//! Fixed-width packed integer arrays with O(1) random access.
//!
//! This is the physical layout used for LeCo delta arrays, FOR frames and
//! dictionary code arrays: `n` unsigned integers each occupying exactly
//! `width` bits, packed back-to-back LSB-first into `u64` words.

use crate::stream::read_bits;

/// An immutable array of `len` unsigned integers, each stored in `width` bits.
///
/// `width == 0` is allowed and represents an array of zeros that occupies no
/// payload space (the common case for perfectly-predicted LeCo partitions and
/// RLE runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedArray {
    words: Vec<u64>,
    len: usize,
    width: u8,
}

impl PackedArray {
    /// Pack `values` using `width` bits per value.
    ///
    /// # Panics
    /// Panics if any value does not fit in `width` bits.
    pub fn from_values(values: &[u64], width: u8) -> Self {
        assert!(width <= 64);
        if width == 0 {
            debug_assert!(values.iter().all(|&v| v == 0));
            return Self {
                words: Vec::new(),
                len: values.len(),
                width,
            };
        }
        let total_bits = values.len() * width as usize;
        let mut words = vec![0u64; crate::div_ceil(total_bits, 64)];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(
                width == 64 || v < (1u64 << width),
                "value {v} does not fit in {width} bits"
            );
            let bit_pos = i * width as usize;
            let word_idx = bit_pos / 64;
            let offset = bit_pos % 64;
            words[word_idx] |= v << offset;
            let avail = 64 - offset;
            if (width as usize) > avail {
                words[word_idx + 1] |= v >> avail;
            }
        }
        Self {
            words,
            len: values.len(),
            width,
        }
    }

    /// Pack `values` with the minimal width that fits the maximum value.
    pub fn from_values_auto(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        Self::from_values(values, crate::bits_for(max))
    }

    /// Construct from raw parts (used when deserializing a storage format).
    pub fn from_raw_parts(words: Vec<u64>, len: usize, width: u8) -> Self {
        assert!(width <= 64);
        assert!(words.len() * 64 >= len * width as usize);
        Self { words, len, width }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per element.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Payload size in bytes (word granularity).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Exact payload size in bits.
    #[inline]
    pub fn size_bits(&self) -> usize {
        self.len * self.width as usize
    }

    /// Backing words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Random access to element `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`, in both debug and release builds.  Callers that
    /// probe speculatively should use [`Self::try_get`] instead.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self.try_get(i) {
            Some(v) => v,
            None => panic!("index {i} out of bounds (len {})", self.len),
        }
    }

    /// Checked random access: `None` when `i >= len`.
    #[inline]
    pub fn try_get(&self, i: usize) -> Option<u64> {
        if i >= self.len {
            return None;
        }
        if self.width == 0 {
            return Some(0);
        }
        Some(read_bits(&self.words, i * self.width as usize, self.width))
    }

    /// Decode the whole array into a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.decode_into(&mut out);
        out
    }

    /// Decode the whole array, appending to `out`.
    ///
    /// This is the hot sequential-decode path; it routes through the
    /// word-parallel kernels of [`crate::unpack`], which decode several
    /// values per 64-bit word read instead of performing a positioned
    /// bit-extract per element.
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        let start = out.len();
        out.resize(start + self.len, 0);
        self.decode_into_slice(&mut out[start..]);
    }

    /// Decode the whole array into a caller-provided slice of exactly
    /// [`Self::len`] elements (the allocation-free bulk path).
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn decode_into_slice(&self, out: &mut [u64]) {
        assert_eq!(
            out.len(),
            self.len,
            "output slice length must equal the array length"
        );
        crate::unpack::unpack_bits_into(&self.words, 0, self.width, out);
    }

    /// Reference scalar decode: one positioned bit-extract per element.
    ///
    /// This is the pre-word-parallel implementation, kept as the oracle for
    /// the differential tests (and for measuring the speed-up of
    /// [`Self::decode_into`]).  It is not used on any hot path.
    pub fn decode_into_scalar(&self, out: &mut Vec<u64>) {
        out.reserve(self.len);
        if self.width == 0 {
            out.extend(std::iter::repeat_n(0, self.len));
            return;
        }
        let width = self.width as usize;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let mut bit_pos = 0usize;
        for _ in 0..self.len {
            let word_idx = bit_pos / 64;
            let offset = bit_pos % 64;
            let first = self.words[word_idx] >> offset;
            let avail = 64 - offset;
            let v = if width <= avail {
                first & mask
            } else {
                (first | (self.words[word_idx + 1] << avail)) & mask
            };
            out.push(v);
            bit_pos += width;
        }
    }

    /// Iterate over all elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_small() {
        let values = vec![0u64, 1, 2, 3, 7, 6, 5, 4];
        let arr = PackedArray::from_values(&values, 3);
        assert_eq!(arr.len(), 8);
        assert_eq!(arr.to_vec(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(arr.get(i), v);
        }
    }

    #[test]
    fn zero_width() {
        let values = vec![0u64; 1000];
        let arr = PackedArray::from_values(&values, 0);
        assert_eq!(arr.size_bytes(), 0);
        assert_eq!(arr.get(999), 0);
        assert_eq!(arr.to_vec(), values);
    }

    #[test]
    fn full_width() {
        let values = vec![u64::MAX, 0, 1, u64::MAX - 1];
        let arr = PackedArray::from_values(&values, 64);
        assert_eq!(arr.to_vec(), values);
    }

    #[test]
    fn auto_width_picks_minimum() {
        let arr = PackedArray::from_values_auto(&[0, 5, 7]);
        assert_eq!(arr.width(), 3);
        let arr = PackedArray::from_values_auto(&[0, 0, 0]);
        assert_eq!(arr.width(), 0);
    }

    #[test]
    fn size_accounting() {
        let arr = PackedArray::from_values(&vec![1u64; 100], 7);
        assert_eq!(arr.size_bits(), 700);
        assert_eq!(arr.size_bytes(), crate::div_ceil(700, 64) * 8);
    }

    #[test]
    fn empty_array() {
        let arr = PackedArray::from_values(&[], 13);
        assert!(arr.is_empty());
        assert_eq!(arr.to_vec(), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics_in_all_builds() {
        // The payload has padding words, so an unchecked read at index 8
        // would silently return garbage; `get` must panic instead.
        let arr = PackedArray::from_values(&[1u64; 8], 3);
        arr.get(8);
    }

    #[test]
    fn try_get_probes_without_panicking() {
        let arr = PackedArray::from_values(&[5u64, 6, 7], 3);
        assert_eq!(arr.try_get(2), Some(7));
        assert_eq!(arr.try_get(3), None);
        assert_eq!(arr.try_get(usize::MAX), None);
        let empty = PackedArray::from_values(&[], 0);
        assert_eq!(empty.try_get(0), None);
    }

    fn pseudo_values(n: usize, width: u8) -> Vec<u64> {
        let mask = if width == 0 {
            0
        } else if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(23) & mask)
            .collect()
    }

    /// Differential check: the word-parallel `decode_into` / `decode_into_slice`
    /// paths must agree with per-element `get` and with the retained scalar
    /// oracle for every width 0..=64, across lengths that exercise empty
    /// arrays, partial words, exact word multiples, 64-value block boundaries
    /// and straddling tails.
    #[test]
    fn decode_matches_get_for_all_widths() {
        for width in 0u8..=64 {
            for &n in &[0usize, 1, 5, 63, 64, 65, 127, 128, 129, 191, 257] {
                let values = pseudo_values(n, width);
                let arr = PackedArray::from_values(&values, width);

                let mut bulk = Vec::new();
                arr.decode_into(&mut bulk);
                let mut scalar = Vec::new();
                arr.decode_into_scalar(&mut scalar);
                assert_eq!(bulk, scalar, "width {width} len {n}: bulk vs scalar");

                let mut sliced = vec![0u64; n];
                arr.decode_into_slice(&mut sliced);
                assert_eq!(bulk, sliced, "width {width} len {n}: vec vs slice");

                for (i, &v) in bulk.iter().enumerate() {
                    assert_eq!(arr.get(i), v, "width {width} len {n} at {i}");
                }
                assert_eq!(bulk, values, "width {width} len {n}: round trip");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(0u64..u64::MAX, 0..300), extra_width in 0u8..4) {
            let max = values.iter().copied().max().unwrap_or(0);
            let width = (crate::bits_for(max) + extra_width).min(64);
            let arr = PackedArray::from_values(&values, width);
            prop_assert_eq!(arr.to_vec(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(arr.get(i), v);
            }
        }

        #[test]
        fn prop_raw_parts_round_trip(values in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let arr = PackedArray::from_values_auto(&values);
            let rebuilt = PackedArray::from_raw_parts(arr.words().to_vec(), arr.len(), arr.width());
            prop_assert_eq!(rebuilt.to_vec(), values);
        }

        /// Differential property: for arbitrary width/length combinations
        /// (biased towards word-boundary-straddling lengths), the
        /// word-parallel bulk path agrees with per-element `get` and with
        /// the scalar oracle.
        #[test]
        fn prop_bulk_decode_matches_get_and_scalar(
            width in 0u8..=64,
            base_len in 0usize..3,
            jitter in 0usize..7,
            seed in any::<u64>(),
        ) {
            // Lengths cluster around the 64-value block boundaries so the
            // block-kernel/stream-kernel seam is always exercised.
            let n = base_len * 64 + jitter;
            let mask = if width == 0 { 0 } else if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let values: Vec<u64> = (0..n as u64)
                .map(|i| (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
                .collect();
            let arr = PackedArray::from_values(&values, width);
            let mut bulk = Vec::new();
            arr.decode_into(&mut bulk);
            let mut scalar = Vec::new();
            arr.decode_into_scalar(&mut scalar);
            prop_assert_eq!(&bulk, &scalar);
            prop_assert_eq!(&bulk, &values);
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(arr.get(i), v);
            }
        }
    }
}
