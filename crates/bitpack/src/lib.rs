//! Bit-level packing primitives shared by every compression codec in the
//! workspace.
//!
//! The crate provides four building blocks:
//!
//! * [`BitWriter`] / [`BitReader`] — an LSB-first bit stream over `u64` words,
//!   used when a codec needs to emit values of heterogeneous widths
//!   sequentially (e.g. unary codes, rANS state flushes).
//! * [`PackedArray`] — a fixed-width array of unsigned integers with O(1)
//!   random access.  This is the physical representation of every LeCo delta
//!   array and of Frame-of-Reference frames.
//! * [`BitVec`] — an uncompressed bit vector with constant-time `rank1` and
//!   near-constant-time `select1`, used by the Elias-Fano codec to find the
//!   upper-bit bucket of the *i*-th element.
//! * [`zigzag`] / [`unary`] — small helper encodings.
//!
//! All structures are self-contained (no external dependencies) and carry
//! enough metadata to report their exact serialized size in bytes, which the
//! benchmark harness relies on when computing compression ratios.

pub mod bitvec;
pub mod packed;
pub mod stream;
pub mod unary;
pub mod zigzag;

pub use bitvec::BitVec;
pub use packed::PackedArray;
pub use stream::{BitReader, BitWriter};
pub use zigzag::{zigzag_decode, zigzag_encode};

/// Number of bits needed to represent `v` (0 needs 0 bits).
#[inline]
pub fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Number of bits needed to represent every value in an unsigned range
/// `[0, max]` (i.e. `bits_for(max)`), returning at least 0 and at most 64.
#[inline]
pub fn width_for_max(max: u64) -> u8 {
    bits_for(max)
}

/// Ceiling division for byte/word sizing computations.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_edge_cases() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
        assert_eq!(bits_for(u64::MAX >> 1), 63);
    }

    #[test]
    fn div_ceil_basic() {
        assert_eq!(div_ceil(0, 8), 0);
        assert_eq!(div_ceil(1, 8), 1);
        assert_eq!(div_ceil(8, 8), 1);
        assert_eq!(div_ceil(9, 8), 2);
    }
}
