//! Bit-level packing primitives shared by every compression codec in the
//! workspace.
//!
//! The crate provides four building blocks:
//!
//! * [`BitWriter`] / [`BitReader`] — an LSB-first bit stream over `u64` words,
//!   used when a codec needs to emit values of heterogeneous widths
//!   sequentially (e.g. unary codes, rANS state flushes).
//! * [`PackedArray`] — a fixed-width array of unsigned integers with O(1)
//!   random access.  This is the physical representation of every LeCo delta
//!   array and of Frame-of-Reference frames.
//! * [`unpack`] — word-parallel bulk decode kernels (one monomorphised
//!   kernel per bit width) behind [`unpack::unpack_bits_into`], the fast
//!   path under every sequential `decode_into` in the workspace.
//! * [`BitVec`] — an uncompressed bit vector with constant-time `rank1` and
//!   near-constant-time `select1`, used by the Elias-Fano codec to find the
//!   upper-bit bucket of the *i*-th element.
//! * [`zigzag`] / [`unary`] — small helper encodings.
//!
//! In paper terms this crate is the storage substrate beneath §3.1's
//! "Model + Delta" representation: the delta array of Figure 7 is a
//! [`PackedArray`], and the fixed-width payload bytes documented in
//! `docs/FORMAT.md` (§"Packed delta payload") are exactly its backing words.
//!
//! All structures are self-contained (no external dependencies) and carry
//! enough metadata to report their exact serialized size in bytes, which the
//! benchmark harness relies on when computing compression ratios.
//!
//! ```
//! use leco_bitpack::PackedArray;
//!
//! let values: Vec<u64> = (0..1000).map(|i| i % 500).collect();
//! let packed = PackedArray::from_values_auto(&values);
//! assert_eq!(packed.width(), 9); // 499 needs 9 bits
//! assert_eq!(packed.get(123), 123);
//! assert_eq!(packed.try_get(1000), None);
//!
//! // Word-parallel bulk decode into a caller-provided buffer.
//! let mut out = vec![0u64; values.len()];
//! packed.decode_into_slice(&mut out);
//! assert_eq!(out, values);
//! ```

pub mod bitvec;
pub mod filter;
pub mod packed;
pub mod stream;
pub mod unary;
pub mod unpack;
pub mod zigzag;

pub use bitvec::BitVec;
pub use filter::{filter_deltas_range, filter_packed_range};
pub use packed::PackedArray;
pub use stream::{BitReader, BitWriter};
pub use unpack::{unpack_bits_into, unpack_deltas_into};
pub use zigzag::{zigzag_decode, zigzag_encode};

/// Number of bits needed to represent `v` (0 needs 0 bits).
#[inline]
pub fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Number of bits needed to represent every value in an unsigned range
/// `[0, max]` (i.e. `bits_for(max)`), returning at least 0 and at most 64.
#[inline]
pub fn width_for_max(max: u64) -> u8 {
    bits_for(max)
}

/// Ceiling division for byte/word sizing computations.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_edge_cases() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
        assert_eq!(bits_for(u64::MAX >> 1), 63);
    }

    #[test]
    fn div_ceil_basic() {
        assert_eq!(div_ceil(0, 8), 0);
        assert_eq!(div_ceil(1, 8), 1);
        assert_eq!(div_ceil(8, 8), 1);
        assert_eq!(div_ceil(9, 8), 2);
    }
}
