//! Unary coding helpers.
//!
//! A value `v` is written as `v` zero bits followed by a one bit.  Elias-Fano
//! uses unary codes for the per-bucket counts of its upper bits, and the
//! RocksDB-style index block uses them for small gap counters in tests.

use crate::stream::{BitReader, BitWriter};

/// Write `v` in unary to the bit stream (`v` zeros then a one).
pub fn write_unary(w: &mut BitWriter, v: u64) {
    // Write zeros in chunks of up to 64 bits to avoid per-bit loop cost for
    // the occasional large gap.
    let mut remaining = v;
    while remaining >= 64 {
        w.write(0, 64);
        remaining -= 64;
    }
    if remaining > 0 {
        w.write(0, remaining as u8);
    }
    w.write(1, 1);
}

/// Read a unary-coded value from the bit stream.
pub fn read_unary(r: &mut BitReader<'_>) -> u64 {
    let mut count = 0u64;
    while !r.read_bit() {
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_small() {
        let values = [0u64, 1, 2, 5, 63, 64, 65, 130, 1000];
        let mut w = BitWriter::new();
        for &v in &values {
            write_unary(&mut w, v);
        }
        let (words, len) = w.finish();
        let mut r = BitReader::new(&words, len);
        for &v in &values {
            assert_eq!(read_unary(&mut r), v);
        }
    }

    #[test]
    fn zero_is_single_bit() {
        let mut w = BitWriter::new();
        write_unary(&mut w, 0);
        assert_eq!(w.len_bits(), 1);
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(0u64..5000, 0..100)) {
            let mut w = BitWriter::new();
            for &v in &values { write_unary(&mut w, v); }
            let (words, len) = w.finish();
            let mut r = BitReader::new(&words, len);
            for &v in &values {
                prop_assert_eq!(read_unary(&mut r), v);
            }
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
