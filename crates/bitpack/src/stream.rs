//! Sequential bit stream reader and writer.
//!
//! Bits are packed LSB-first into little-endian `u64` words: the first bit
//! written occupies bit 0 of word 0.  This layout lets [`BitReader`] fetch up
//! to 57 bits with a single unaligned 64-bit load in the common case and keeps
//! the serialized form platform independent.

/// Append-only bit writer backed by a `Vec<u64>`.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    words: Vec<u64>,
    /// Total number of valid bits currently written.
    len_bits: usize,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(crate::div_ceil(bits, 64)),
            len_bits: 0,
        }
    }

    /// Number of bits written so far.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// True if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Write the `width` low bits of `value` (0 <= width <= 64).
    ///
    /// # Panics
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    #[inline]
    pub fn write(&mut self, value: u64, width: u8) {
        assert!(width <= 64, "width must be <= 64, got {width}");
        if width == 0 {
            return;
        }
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let bit_pos = self.len_bits % 64;
        if bit_pos == 0 {
            self.words.push(value);
        } else {
            let last = self.words.last_mut().expect("non-empty words");
            *last |= value << bit_pos;
            let spill = 64 - bit_pos;
            if (width as usize) > spill {
                self.words.push(value >> spill);
            }
        }
        self.len_bits += width as usize;
        // Clear any garbage above len_bits in the last word.
        let tail = self.len_bits % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> (64 - tail);
            }
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write(bit as u64, 1);
    }

    /// Consume the writer, returning the packed words and the bit length.
    pub fn finish(self) -> (Vec<u64>, usize) {
        (self.words, self.len_bits)
    }

    /// Borrow the underlying words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serialized size in bytes (word granularity).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Sequential reader over a bit stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    words: &'a [u64],
    len_bits: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `words` containing `len_bits` valid bits.
    pub fn new(words: &'a [u64], len_bits: usize) -> Self {
        debug_assert!(len_bits <= words.len() * 64);
        Self {
            words,
            len_bits,
            pos: 0,
        }
    }

    /// Current bit position.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos
    }

    /// Move the cursor to an absolute bit position.
    pub fn seek(&mut self, bit_pos: usize) {
        assert!(bit_pos <= self.len_bits, "seek past end of stream");
        self.pos = bit_pos;
    }

    /// Read `width` bits and advance.
    ///
    /// # Panics
    /// Panics if fewer than `width` bits remain.
    #[inline]
    pub fn read(&mut self, width: u8) -> u64 {
        let v = self.peek_at(self.pos, width);
        self.pos += width as usize;
        v
    }

    /// Read a single bit and advance.
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        self.read(1) != 0
    }

    /// Read `width` bits starting at an arbitrary absolute position, without
    /// moving the cursor.
    #[inline]
    pub fn peek_at(&self, bit_pos: usize, width: u8) -> u64 {
        assert!(width <= 64);
        if width == 0 {
            return 0;
        }
        assert!(
            bit_pos + width as usize <= self.len_bits,
            "read past end of bit stream: pos {bit_pos} width {width} len {}",
            self.len_bits
        );
        read_bits(self.words, bit_pos, width)
    }
}

/// Read `width` (0..=64) bits starting at absolute bit position `bit_pos`
/// from an LSB-first packed word slice.  A zero width always yields 0 and
/// performs no memory access.
#[inline]
pub fn read_bits(words: &[u64], bit_pos: usize, width: u8) -> u64 {
    if width == 0 {
        return 0;
    }
    let word_idx = bit_pos / 64;
    let offset = bit_pos % 64;
    let w = width as usize;
    let first = words[word_idx] >> offset;
    let avail = 64 - offset;
    let value = if w <= avail {
        first
    } else {
        first | (words[word_idx + 1] << avail)
    };
    if width == 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, u8)> = vec![
            (0, 1),
            (1, 1),
            (5, 3),
            (255, 8),
            (1023, 10),
            (0, 0),
            (u64::MAX, 64),
            (12345678901234, 44),
            (1, 63),
        ];
        for &(v, width) in &values {
            w.write(v, width);
        }
        let (words, len) = w.finish();
        let mut r = BitReader::new(&words, len);
        for &(v, width) in &values {
            assert_eq!(r.read(width), v, "width {width}");
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xFF, 8);
        let (words, len) = w.finish();
        let mut r = BitReader::new(&words, len);
        assert_eq!(r.peek_at(0, 3), 0b101);
        assert_eq!(r.position(), 0);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(8), 0xFF);
    }

    #[test]
    fn seek_random_access() {
        let mut w = BitWriter::new();
        for i in 0..100u64 {
            w.write(i, 7);
        }
        let (words, len) = w.finish();
        let mut r = BitReader::new(&words, len);
        r.seek(7 * 42);
        assert_eq!(r.read(7), 42);
        r.seek(0);
        assert_eq!(r.read(7), 0);
    }

    #[test]
    #[should_panic]
    fn read_past_end_panics() {
        let w = BitWriter::new();
        let (words, len) = w.finish();
        let mut r = BitReader::new(&words, len);
        r.read(1);
    }

    #[test]
    fn empty_stream() {
        let w = BitWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.size_bytes(), 0);
    }

    #[test]
    fn write_bit_sequence() {
        let mut w = BitWriter::new();
        let bits = [true, false, true, true, false, false, true];
        for &b in &bits {
            w.write_bit(b);
        }
        let (words, len) = w.finish();
        assert_eq!(len, bits.len());
        let mut r = BitReader::new(&words, len);
        for &b in &bits {
            assert_eq!(r.read_bit(), b);
        }
    }
}
