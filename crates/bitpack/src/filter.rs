//! Word-parallel *packed-domain* predicate kernels.
//!
//! The decode kernels in [`crate::unpack`] materialise values; the kernels
//! here answer an inclusive range predicate over the packed stream directly,
//! emitting 64-row selection masks and never writing a decoded buffer.  They
//! are the physical layer of predicate pushdown: codecs rebase the predicate
//! constants into the packed domain (`c - frame_min` for FOR; see
//! `docs/SCAN.md` §"Compressed execution") and the comparison happens right
//! where the bits are extracted, one branch-free test per value fused onto
//! the same 128-bit streaming bit buffer the decoders use.
//!
//! Both kernels are monomorphised per bit width like the unpack kernels, so
//! shifts and the refill test constant-fold; the predicate itself is the
//! unsigned range trick `v.wrapping_sub(lo) <= hi - lo` (one sub, one
//! compare, no branches).

use crate::unpack::low_mask;

/// Emit masks for `len` packed `width`-bit values starting at `bit_pos`:
/// for each block of up to 64 values, calls `emit(start, mask, n)` where
/// `start` is the block's first value index (relative to the run), `n <= 64`
/// its length, and bit `k` of `mask` is set iff `plo <= value[start+k] <=
/// phi`.  Bits `n..64` of `mask` are zero.
///
/// `plo > phi` (empty predicate) emits all-zero masks; `width == 0` (all
/// values zero) reads nothing and resolves the whole run from `plo == 0`.
///
/// # Panics
/// Panics if `width > 64` or the bit range extends past the end of `words`.
pub fn filter_packed_range(
    words: &[u64],
    bit_pos: usize,
    width: u8,
    len: usize,
    plo: u64,
    phi: u64,
    mut emit: impl FnMut(usize, u64, usize),
) {
    assert!(width <= 64, "width must be <= 64, got {width}");
    if len == 0 {
        return;
    }
    if plo > phi {
        emit_uniform(len, false, &mut emit);
        return;
    }
    if width == 0 {
        emit_uniform(len, plo == 0, &mut emit);
        return;
    }
    assert!(
        bit_pos + len * width as usize <= words.len() * 64,
        "bit range {}..{} exceeds payload of {} bits",
        bit_pos,
        bit_pos + len * width as usize,
        words.len() * 64
    );
    macro_rules! dispatch {
        ($($w:literal)*) => {
            match width as u32 {
                $( $w => filter_stream::<$w>(words, bit_pos, len, plo, phi, &mut emit), )*
                _ => unreachable!("width checked to be 1..=64"),
            }
        };
    }
    dispatch!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
        33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48
        49 50 51 52 53 54 55 56 57 58 59 60 61 62 63 64);
}

/// Delta twin of [`filter_packed_range`]: the packed stream holds `width`-bit
/// ZigZag gaps and the predicate applies to the running reconstruction
/// `anchor ⊕ gap₀ ⊕ … ⊕ gapᵢ` (the same values [`crate::unpack_deltas_into`]
/// would materialise — here they only ever exist in a register).  Bit `k` of
/// each emitted mask is set iff `lo <= value[start+k] <= hi`.
///
/// `width == 0` means every value equals `anchor` and resolves without
/// touching the payload.
///
/// # Panics
/// Panics if `width > 64` or the bit range extends past the end of `words`.
#[allow(clippy::too_many_arguments)]
pub fn filter_deltas_range(
    words: &[u64],
    bit_pos: usize,
    width: u8,
    anchor: u64,
    len: usize,
    lo: u64,
    hi: u64,
    mut emit: impl FnMut(usize, u64, usize),
) {
    assert!(width <= 64, "width must be <= 64, got {width}");
    if len == 0 {
        return;
    }
    if lo > hi {
        emit_uniform(len, false, &mut emit);
        return;
    }
    if width == 0 {
        emit_uniform(len, (lo..=hi).contains(&anchor), &mut emit);
        return;
    }
    assert!(
        bit_pos + len * width as usize <= words.len() * 64,
        "bit range {}..{} exceeds payload of {} bits",
        bit_pos,
        bit_pos + len * width as usize,
        words.len() * 64
    );
    macro_rules! dispatch {
        ($($w:literal)*) => {
            match width as u32 {
                $( $w => filter_delta_stream::<$w>(words, bit_pos, anchor, len, lo, hi, &mut emit), )*
                _ => unreachable!("width checked to be 1..=64"),
            }
        };
    }
    dispatch!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
        33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48
        49 50 51 52 53 54 55 56 57 58 59 60 61 62 63 64);
}

/// Emit `len` identical selection bits as full blocks — the degenerate cases
/// (empty predicate, zero width) where no payload read is needed.
fn emit_uniform(len: usize, selected: bool, emit: &mut impl FnMut(usize, u64, usize)) {
    let full = if selected { u64::MAX } else { 0 };
    let mut idx = 0;
    while idx < len {
        let n = (len - idx).min(64);
        let mask = if n == 64 {
            full
        } else {
            full & ((1u64 << n) - 1)
        };
        emit(idx, mask, n);
        idx += n;
    }
}

/// Streaming extract-and-compare: the same 128-bit refill buffer as
/// [`crate::unpack`]'s stream kernel, with the unsigned range test fused in
/// place of the store.  Callers guarantee `plo <= phi` and `W >= 1`.
#[inline(always)]
fn filter_stream<const W: u32>(
    words: &[u64],
    bit_pos: usize,
    len: usize,
    plo: u64,
    phi: u64,
    emit: &mut impl FnMut(usize, u64, usize),
) {
    let m = low_mask(W);
    let span = phi - plo;
    let mut wi = bit_pos >> 6;
    let off = (bit_pos & 63) as u32;
    let mut buf = (words[wi] >> off) as u128;
    let mut avail = 64 - off;
    wi += 1;
    let mut idx = 0;
    while idx < len {
        let n = (len - idx).min(64);
        let mut mask = 0u64;
        for k in 0..n {
            if avail < W {
                buf |= (words[wi] as u128) << avail;
                wi += 1;
                avail += 64;
            }
            let v = (buf as u64) & m;
            buf >>= W;
            avail -= W;
            mask |= ((v.wrapping_sub(plo) <= span) as u64) << k;
        }
        emit(idx, mask, n);
        idx += n;
    }
}

/// Streaming ZigZag + prefix-sum + compare: the fused delta decode loop of
/// [`crate::unpack`] with the range test replacing the store.  Callers
/// guarantee `lo <= hi` and `W >= 1`.
#[inline(always)]
fn filter_delta_stream<const W: u32>(
    words: &[u64],
    bit_pos: usize,
    anchor: u64,
    len: usize,
    lo: u64,
    hi: u64,
    emit: &mut impl FnMut(usize, u64, usize),
) {
    let m = low_mask(W);
    let span = hi - lo;
    let mut wi = bit_pos >> 6;
    let off = (bit_pos & 63) as u32;
    let mut buf = (words[wi] >> off) as u128;
    let mut avail = 64 - off;
    wi += 1;
    let mut current = anchor;
    let mut idx = 0;
    while idx < len {
        let n = (len - idx).min(64);
        let mut mask = 0u64;
        for k in 0..n {
            if avail < W {
                buf |= (words[wi] as u128) << avail;
                wi += 1;
                avail += 64;
            }
            let gap = (buf as u64) & m;
            buf >>= W;
            avail -= W;
            current = current.wrapping_add(crate::zigzag_decode(gap) as u64);
            mask |= ((current.wrapping_sub(lo) <= span) as u64) << k;
        }
        emit(idx, mask, n);
        idx += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{unpack_bits_into, unpack_deltas_into};

    fn pack_at(values: &[u64], width: u8, bit_pos: usize) -> Vec<u64> {
        let total = bit_pos + values.len() * width as usize;
        let mut words = vec![0u64; crate::div_ceil(total.max(1), 64)];
        for (i, &v) in values.iter().enumerate() {
            let pos = bit_pos + i * width as usize;
            let (wi, off) = (pos / 64, pos % 64);
            words[wi] |= v << off;
            if (width as usize) > 64 - off {
                words[wi + 1] |= v >> (64 - off);
            }
        }
        words
    }

    fn sample_values(n: usize, width: u8) -> Vec<u64> {
        let m = low_mask(width.max(1) as u32);
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) & m)
            .collect()
    }

    /// Collect emitted masks into a per-value boolean vector, checking block
    /// geometry along the way.
    fn collect(len: usize, run: impl FnOnce(&mut dyn FnMut(usize, u64, usize))) -> Vec<bool> {
        let mut sel = vec![false; len];
        let mut expected_start = 0usize;
        run(&mut |start, mask, n| {
            assert_eq!(start, expected_start, "blocks must be contiguous");
            assert!(n <= 64 && n > 0);
            if n < 64 {
                assert_eq!(mask >> n, 0, "bits past n must be clear");
            }
            for k in 0..n {
                sel[start + k] = (mask >> k) & 1 == 1;
            }
            expected_start = start + n;
        });
        assert_eq!(expected_start, len, "blocks must cover the run");
        sel
    }

    #[test]
    fn packed_filter_matches_decode_then_compare() {
        for width in 0u8..=64 {
            for &n in &[0usize, 1, 63, 64, 65, 129, 200] {
                for &phase in &[0usize, 13, 63] {
                    let values = sample_values(n, width);
                    let words = pack_at(&values, width.max(1), phase);
                    let mut decoded = vec![0u64; n];
                    unpack_bits_into(&words, phase, width, &mut decoded);
                    let m = low_mask(width.max(1) as u32);
                    for (plo, phi) in [(0u64, 0u64), (0, m), (m / 3, m / 2), (5, 4), (m, m)] {
                        let sel = collect(n, |emit| {
                            filter_packed_range(&words, phase, width, n, plo, phi, emit)
                        });
                        let want: Vec<bool> = decoded
                            .iter()
                            .map(|&v| plo <= phi && (plo..=phi).contains(&v))
                            .collect();
                        assert_eq!(sel, want, "w={width} n={n} phase={phase} [{plo},{phi}]");
                    }
                }
            }
        }
    }

    #[test]
    fn delta_filter_matches_decode_then_compare() {
        for width in 0u8..=64 {
            for &n in &[0usize, 1, 64, 65, 200] {
                for &phase in &[0usize, 13] {
                    let gaps = sample_values(n, width);
                    let words = pack_at(&gaps, width.max(1), phase);
                    let anchor = 0x1234_5678_9ABC_DEF0u64;
                    let mut decoded = vec![0u64; n];
                    unpack_deltas_into(&words, phase, width, anchor, &mut decoded);
                    let (lo, hi) = (
                        anchor.wrapping_sub(1_000),
                        anchor.wrapping_add(u64::MAX / 3),
                    );
                    let ranges = if lo <= hi {
                        vec![(lo, hi), (0, u64::MAX), (anchor, anchor), (7, 3)]
                    } else {
                        vec![(0, u64::MAX), (anchor, anchor), (7, 3)]
                    };
                    for (lo, hi) in ranges {
                        let sel = collect(n, |emit| {
                            filter_deltas_range(&words, phase, width, anchor, n, lo, hi, emit)
                        });
                        let want: Vec<bool> = decoded
                            .iter()
                            .map(|&v| lo <= hi && (lo..=hi).contains(&v))
                            .collect();
                        assert_eq!(sel, want, "w={width} n={n} phase={phase} [{lo},{hi}]");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_width_resolves_without_payload() {
        // No words at all: width 0 must never touch the slice.
        let sel = collect(100, |emit| filter_packed_range(&[], 0, 0, 100, 0, 5, emit));
        assert!(sel.iter().all(|&s| s));
        let sel = collect(100, |emit| filter_packed_range(&[], 0, 0, 100, 1, 5, emit));
        assert!(sel.iter().all(|&s| !s));
        let sel = collect(70, |emit| {
            filter_deltas_range(&[], 0, 0, 42, 70, 40, 44, emit)
        });
        assert!(sel.iter().all(|&s| s));
    }
}
