//! ZigZag mapping between signed and unsigned integers.
//!
//! Small-magnitude signed values (positive or negative) map to small unsigned
//! values, which keeps bit-packed widths minimal: 0 → 0, -1 → 1, 1 → 2,
//! -2 → 3, …  Used by the Delta codec and by LeCo's serialized model
//! parameters.

/// Map a signed value to an unsigned value with the same magnitude ordering.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// ZigZag for 128-bit values; used where deltas may exceed the i64 range
/// (difference of two arbitrary u64 values).
#[inline]
pub fn zigzag_encode_i128(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

/// Inverse of [`zigzag_encode_i128`].
#[inline]
pub fn zigzag_decode_i128(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(2), 4);
        assert_eq!(zigzag_encode(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn small_magnitudes_stay_small() {
        for v in -100i64..=100 {
            assert!(zigzag_encode(v) <= 200);
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip_i64(v in any::<i64>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }

        #[test]
        fn prop_round_trip_i128(v in any::<i128>()) {
            prop_assert_eq!(zigzag_decode_i128(zigzag_encode_i128(v)), v);
        }

        #[test]
        fn prop_unsigned_round_trip(v in any::<u64>()) {
            prop_assert_eq!(zigzag_encode(zigzag_decode(v)), v);
        }
    }
}
