//! Frame-of-Reference (FOR) encoding.
//!
//! The sequence is split into fixed-length frames.  Each frame stores its
//! minimum value and the frame values bit-packed as offsets from that minimum.
//! From the LeCo point of view this is a constant (horizontal-line) regressor
//! with fixed-length partitioning (§2 of the paper).

use crate::{emit_all_set, IntColumn};
use leco_bitpack::{bits_for, PackedArray};

/// Metadata of a single FOR frame.
#[derive(Debug, Clone)]
struct Frame {
    /// Minimum value of the frame (the "reference").
    min: u64,
    /// Bits per packed offset.
    width: u8,
    /// Starting bit offset of this frame's payload in the shared bit buffer.
    bit_offset: u64,
}

/// A FOR-compressed integer column.
#[derive(Debug, Clone)]
pub struct ForCodec {
    frames: Vec<Frame>,
    /// Concatenated bit-packed offsets of all frames.
    payload: Vec<u64>,
    payload_bits: usize,
    frame_len: usize,
    len: usize,
}

impl ForCodec {
    /// Encode `values` using frames of `frame_len` values.
    pub fn encode(values: &[u64], frame_len: usize) -> Self {
        assert!(frame_len > 0, "frame_len must be positive");
        let mut frames = Vec::with_capacity(values.len() / frame_len + 1);
        let mut writer = leco_bitpack::BitWriter::with_capacity(values.len() * 16);
        for chunk in values.chunks(frame_len) {
            let min = chunk.iter().copied().min().unwrap_or(0);
            let max = chunk.iter().copied().max().unwrap_or(0);
            let width = bits_for(max - min);
            frames.push(Frame {
                min,
                width,
                bit_offset: writer.len_bits() as u64,
            });
            for &v in chunk {
                writer.write(v - min, width);
            }
        }
        let (payload, payload_bits) = writer.finish();
        Self {
            frames,
            payload,
            payload_bits,
            frame_len,
            len: values.len(),
        }
    }

    /// Frame length used at encode time.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Evaluate the inclusive predicate `lo <= v <= hi` directly on the
    /// packed words — predicate pushdown for FOR.
    ///
    /// The predicate is rebased into each frame's packed domain
    /// (`v ∈ [lo, hi] ⟺ packed ∈ [lo - min, hi - min]`), so the comparison
    /// runs on the offsets as they are extracted
    /// ([`leco_bitpack::filter_packed_range`]) and no decoded buffer is ever
    /// written.  Frames whose `[min, min + 2^width - 1]` envelope misses or
    /// is contained in the predicate are resolved from the 9-byte header
    /// alone.
    ///
    /// `emit` receives `(row, mask, n)` triples: `n <= 64` selection bits
    /// for rows `row..row + n`, LSB first (rows never covered by an emit are
    /// unselected).  Returns `(rows_skipped, rows_compared)`: rows resolved
    /// from frame headers without touching the payload, and rows compared in
    /// the packed domain.  The two always sum to the column length.
    pub fn filter_range_pushdown(
        &self,
        lo: u64,
        hi: u64,
        mut emit: impl FnMut(usize, u64, usize),
    ) -> (u64, u64) {
        let (mut skipped, mut compared) = (0u64, 0u64);
        let mut start = 0usize;
        for f in &self.frames {
            let n = (self.len - start).min(self.frame_len);
            let max_packed = if f.width == 64 {
                u64::MAX
            } else {
                (1u64 << f.width) - 1
            };
            let frame_max = f.min as u128 + max_packed as u128;
            if lo > hi || (f.min as u128) > hi as u128 || frame_max < lo as u128 {
                // Envelope disjoint from the predicate: nothing can match.
                skipped += n as u64;
            } else if lo <= f.min && frame_max <= hi as u128 {
                // Envelope contained: every row matches.
                skipped += n as u64;
                emit_all_set(start, n, &mut emit);
            } else {
                // width >= 1 here: a zero-width frame's envelope is a single
                // point and always lands in one of the branches above.
                let plo = lo.saturating_sub(f.min);
                let phi = (hi as u128 - f.min as u128).min(max_packed as u128) as u64;
                compared += n as u64;
                leco_bitpack::filter_packed_range(
                    &self.payload,
                    f.bit_offset as usize,
                    f.width,
                    n,
                    plo,
                    phi,
                    |k, mask, nb| emit(start + k, mask, nb),
                );
            }
            start += n;
        }
        (skipped, compared)
    }

    /// Append the on-disk byte image of this column (frame headers followed
    /// by the bit-packed payload).  Its length equals [`IntColumn::size_bytes`];
    /// the columnar engine stores this image in its data files.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        for f in &self.frames {
            out.extend_from_slice(&f.min.to_le_bytes());
            out.push(f.width);
        }
        let payload_bytes = leco_bitpack::div_ceil(self.payload_bits, 8);
        for (i, w) in self.payload.iter().enumerate() {
            let bytes = w.to_le_bytes();
            let take = (payload_bytes - i * 8).min(8);
            out.extend_from_slice(&bytes[..take]);
        }
    }
}

impl IntColumn for ForCodec {
    fn name(&self) -> &'static str {
        "FOR"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        // Per frame: 8-byte reference + 1-byte width.  Bit offsets are
        // derivable from widths and the frame length, so they are not charged.
        self.frames.len() * 9 + leco_bitpack::div_ceil(self.payload_bits, 8)
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        let f = &self.frames[i / self.frame_len];
        let in_frame = i % self.frame_len;
        if f.width == 0 {
            return f.min;
        }
        let bit_pos = f.bit_offset as usize + in_frame * f.width as usize;
        f.min + leco_bitpack::stream::read_bits(&self.payload, bit_pos, f.width)
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        let written = out.len();
        out.resize(written + self.len, 0);
        let mut dst = &mut out[written..];
        for f in &self.frames {
            let n = dst.len().min(self.frame_len);
            let (seg, rest) = dst.split_at_mut(n);
            if f.width == 0 {
                seg.fill(f.min);
            } else {
                // Word-parallel unpack of the packed offsets, then one pass
                // to re-apply the frame reference.
                leco_bitpack::unpack_bits_into(&self.payload, f.bit_offset as usize, f.width, seg);
                for v in seg.iter_mut() {
                    *v += f.min;
                }
            }
            dst = rest;
        }
    }
}

/// Convenience helper: a FOR column where the whole sequence is one frame.
/// Used by tests and by the dictionary-compression experiment.
pub fn encode_single_frame(values: &[u64]) -> ForCodec {
    ForCodec::encode(values, values.len().max(1))
}

/// Re-export of `PackedArray` kept for backwards-compatible callers that want
/// to bit-pack a frame themselves.
pub type ForPayload = PackedArray;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_sorted() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 3 + 7).collect();
        let c = ForCodec::encode(&values, 128);
        assert_eq!(c.decode_all(), values);
        for i in [0usize, 1, 127, 128, 129, 9999] {
            assert_eq!(c.get(i), values[i]);
        }
    }

    #[test]
    fn constant_frame_uses_zero_width() {
        let values = vec![42u64; 1000];
        let c = ForCodec::encode(&values, 100);
        assert_eq!(c.decode_all(), values);
        // 10 frames * 9 bytes header, no payload.
        assert_eq!(c.size_bytes(), 90);
    }

    #[test]
    fn partial_last_frame() {
        let values: Vec<u64> = (0..130u64).collect();
        let c = ForCodec::encode(&values, 64);
        assert_eq!(c.num_frames(), 3);
        assert_eq!(c.decode_all(), values);
        assert_eq!(c.get(129), 129);
    }

    #[test]
    fn empty_input() {
        let c = ForCodec::encode(&[], 128);
        assert_eq!(c.len(), 0);
        assert!(c.decode_all().is_empty());
    }

    #[test]
    fn compresses_small_range_data() {
        let values: Vec<u64> = (0..100_000u64).map(|i| 1_000_000_000 + (i % 16)).collect();
        let c = ForCodec::encode(&values, 1024);
        assert!(c.size_bytes() < values.len(), "expected < 1 byte per value");
    }

    fn pushdown_selection(c: &ForCodec, lo: u64, hi: u64) -> (Vec<bool>, u64, u64) {
        let mut sel = vec![false; c.len()];
        let (skipped, compared) = c.filter_range_pushdown(lo, hi, |row, mask, n| {
            for k in 0..n {
                if (mask >> k) & 1 == 1 {
                    assert!(!sel[row + k], "row {} double-emitted", row + k);
                    sel[row + k] = true;
                }
            }
        });
        (sel, skipped, compared)
    }

    #[test]
    fn pushdown_filter_matches_decode_then_compare() {
        let values: Vec<u64> = (0..3_000u64)
            .map(|i| 1_000 + (i % 700) * 3 + (i / 700) * 5_000)
            .collect();
        let c = ForCodec::encode(&values, 128);
        for (lo, hi) in [
            (0u64, u64::MAX),
            (0, 999),
            (1_000, 1_000),
            (2_000, 9_000),
            (5, 2),
            (u64::MAX, u64::MAX),
        ] {
            let (sel, skipped, compared) = pushdown_selection(&c, lo, hi);
            let want: Vec<bool> = values
                .iter()
                .map(|v| lo <= hi && (lo..=hi).contains(v))
                .collect();
            assert_eq!(sel, want, "[{lo},{hi}]");
            assert_eq!(skipped + compared, values.len() as u64, "[{lo},{hi}]");
        }
    }

    #[test]
    fn pushdown_header_shortcuts_skip_whole_frames() {
        // Constant frames: zero width, so every predicate resolves from the
        // 9-byte headers without a single payload read.
        let values = vec![42u64; 1_000];
        let c = ForCodec::encode(&values, 100);
        let (sel, skipped, compared) = pushdown_selection(&c, 40, 50);
        assert!(sel.iter().all(|&s| s));
        assert_eq!((skipped, compared), (1_000, 0));
        let (sel, skipped, compared) = pushdown_selection(&c, 43, 50);
        assert!(sel.iter().all(|&s| !s));
        assert_eq!((skipped, compared), (1_000, 0));
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(any::<u64>(), 0..500),
                           frame_len in 1usize..200) {
            let c = ForCodec::encode(&values, frame_len);
            prop_assert_eq!(c.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(c.get(i), v);
            }
        }

        #[test]
        fn prop_pushdown_matches_reference(values in proptest::collection::vec(any::<u64>(), 0..500),
                                           frame_len in 1usize..200,
                                           lo in any::<u64>(), hi in any::<u64>()) {
            let c = ForCodec::encode(&values, frame_len);
            // Half the cases: clamp the predicate near actual values so it
            // is not almost always empty.
            let (lo, hi) = if let (Some(&min), true) = (values.iter().min(), lo.is_multiple_of(2)) {
                (min.saturating_add(lo % 97), min.saturating_add(lo % 97 + hi % 911))
            } else {
                (lo.min(hi), lo.max(hi))
            };
            let (sel, skipped, compared) = pushdown_selection(&c, lo, hi);
            let want: Vec<bool> = values.iter().map(|v| (lo..=hi).contains(v)).collect();
            prop_assert_eq!(sel, want);
            prop_assert_eq!(skipped + compared, values.len() as u64);
        }
    }
}
