//! `lzb` — a simple LZ77-style general-purpose block codec.
//!
//! The system experiments (§5.1.3) layer zstd on top of the lightweight
//! column encodings to study how block compression interacts with them.  We
//! stand in a small byte-oriented LZ codec with a greedy hash-chain matcher:
//! it captures the relevant behaviour (extra compression on redundant pages,
//! non-trivial CPU cost on the decompression path) without pulling in an
//! external dependency.
//!
//! Format: a sequence of tokens.  Each token is
//! `literal_len (varint) | literal bytes | match_len (varint) | distance (varint)`.
//! A `match_len` of zero terminates the block (final literals only).

const MIN_MATCH: usize = 4;
const MAX_DISTANCE: usize = 1 << 16;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn write_varint(out: &mut Vec<u8>, mut v: usize) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> usize {
    let mut v = 0usize;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        v |= ((byte & 0x7F) as usize) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    v
}

/// Compress a byte block.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_varint(&mut out, input.len());
    if input.is_empty() {
        return out;
    }
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut pos = 0usize;
    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = head[h];
        head[h] = pos;
        let mut match_len = 0usize;
        if candidate != usize::MAX
            && pos - candidate <= MAX_DISTANCE
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match as far as possible.
            match_len = MIN_MATCH;
            while pos + match_len < input.len()
                && input[candidate + match_len] == input[pos + match_len]
            {
                match_len += 1;
            }
        }
        if match_len >= MIN_MATCH {
            // Emit literals then the match.
            write_varint(&mut out, pos - literal_start);
            out.extend_from_slice(&input[literal_start..pos]);
            write_varint(&mut out, match_len);
            write_varint(&mut out, pos - candidate);
            // Insert a few hash entries inside the match so later data can
            // reference it (cheap approximation of full insertion).
            let step = (match_len / 8).max(1);
            let mut p = pos + 1;
            while p + MIN_MATCH <= input.len() && p < pos + match_len {
                head[hash4(&input[p..])] = p;
                p += step;
            }
            pos += match_len;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    // Trailing literals, match_len = 0 terminator.
    write_varint(&mut out, input.len() - literal_start);
    out.extend_from_slice(&input[literal_start..]);
    write_varint(&mut out, 0);
    write_varint(&mut out, 0);
    out
}

/// Decompress a block produced by [`compress`].
pub fn decompress(data: &[u8]) -> Vec<u8> {
    let mut pos = 0usize;
    let total = read_varint(data, &mut pos);
    let mut out = Vec::with_capacity(total);
    if total == 0 {
        return out;
    }
    loop {
        let literal_len = read_varint(data, &mut pos);
        out.extend_from_slice(&data[pos..pos + literal_len]);
        pos += literal_len;
        let match_len = read_varint(data, &mut pos);
        let distance = read_varint(data, &mut pos);
        if match_len == 0 {
            break;
        }
        let start = out.len() - distance;
        // Byte-by-byte copy: matches may overlap their own output.
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    debug_assert_eq!(out.len(), total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_text() {
        let input = b"the quick brown fox jumps over the lazy dog, the quick brown fox again and again and again".to_vec();
        let c = compress(&input);
        assert_eq!(decompress(&c), input);
        assert!(c.len() < input.len());
    }

    #[test]
    fn round_trip_empty_and_tiny() {
        for input in [vec![], vec![1u8], vec![1, 2, 3]] {
            assert_eq!(decompress(&compress(&input)), input);
        }
    }

    #[test]
    fn highly_redundant_compresses_well() {
        let input: Vec<u8> = (0..100_000).map(|i| ((i / 100) % 7) as u8).collect();
        let c = compress(&input);
        assert!(
            c.len() < input.len() / 10,
            "compressed {} of {}",
            c.len(),
            input.len()
        );
        assert_eq!(decompress(&c), input);
    }

    #[test]
    fn incompressible_random_does_not_explode() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let input: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let c = compress(&input);
        assert!(c.len() <= input.len() + input.len() / 100 + 64);
        assert_eq!(decompress(&c), input);
    }

    #[test]
    fn overlapping_match_rle_style() {
        let input = vec![7u8; 10_000];
        let c = compress(&input);
        assert!(c.len() < 200);
        assert_eq!(decompress(&c), input);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_round_trip(input in proptest::collection::vec(any::<u8>(), 0..5000)) {
            prop_assert_eq!(decompress(&compress(&input)), input);
        }

        #[test]
        fn prop_round_trip_low_entropy(input in proptest::collection::vec(0u8..4, 0..5000)) {
            prop_assert_eq!(decompress(&compress(&input)), input);
        }
    }
}
