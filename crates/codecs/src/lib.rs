//! Baseline lightweight compression codecs used by the LeCo evaluation.
//!
//! Every integer codec in this crate encodes a `&[u64]` column into an
//! immutable, self-contained compressed representation that supports:
//!
//! * `len()` / `size_bytes()` — logical length and compressed footprint,
//! * `get(i)` — random access to a single value,
//! * `decode_all()` / `decode_into()` — full sequential decompression.
//!
//! The codecs implemented here are the comparison points of the paper's
//! microbenchmark (§4.1): Frame-of-Reference ([`for_codec::ForCodec`]),
//! Delta encoding ([`delta::DeltaCodec`]), Run-Length Encoding
//! ([`rle::RleCodec`]), Elias-Fano ([`elias_fano::EliasFano`]) and rANS
//! ([`rans::RansCodec`]), plus an order-preserving dictionary
//! ([`dict::OpDict`]), an FSST-style string codec ([`fsst_like::FsstLike`])
//! and an LZ77-style block codec ([`lzb`]) standing in for zstd in the
//! system experiments.
//!
//! The fixed-width payloads these codecs produce share `leco-bitpack`'s
//! packed-word layout (see `docs/FORMAT.md` §"Packed delta payload" at the
//! repository root); their sequential decodes route through the same
//! word-parallel bulk kernels as LeCo's partition decoder.
//!
//! ```
//! use leco_codecs::{ForCodec, IntColumn};
//!
//! let values: Vec<u64> = (0..5_000u64).map(|i| 1_000 + i % 128).collect();
//! let col = ForCodec::encode(&values, 1024);
//! assert!(col.size_bytes() < values.len() * 2); // 7-bit offsets + frame headers
//! assert_eq!(col.get(4_321), values[4_321]);
//!
//! let mut out = Vec::with_capacity(col.len());
//! col.decode_into(&mut out); // word-parallel bulk decode
//! assert_eq!(out, values);
//! ```

pub mod delta;
pub mod dict;
pub mod elias_fano;
pub mod for_codec;
pub mod fsst_like;
pub mod lzb;
pub mod rans;
pub mod rle;

pub use delta::DeltaCodec;
pub use dict::OpDict;
pub use elias_fano::EliasFano;
pub use for_codec::ForCodec;
pub use fsst_like::FsstLike;
pub use rans::RansCodec;
pub use rle::RleCodec;

/// Common behaviour of a compressed integer column.
///
/// The trait is object-safe so that the benchmark harness can treat every
/// scheme (including LeCo itself, via an adapter) uniformly.
pub trait IntColumn {
    /// Human-readable codec label, e.g. `"FOR"`.
    fn name(&self) -> &'static str;
    /// Number of logical values stored.
    fn len(&self) -> usize;
    /// True if the column stores no values.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Compressed size in bytes, including all metadata needed for decoding.
    fn size_bytes(&self) -> usize;
    /// Random access to the value at position `i`.
    fn get(&self, i: usize) -> u64;
    /// Append every value, in order, to `out`.
    fn decode_into(&self, out: &mut Vec<u64>);
    /// Decode the whole column.
    fn decode_all(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        self.decode_into(&mut out);
        out
    }
}

/// Emit `n` set selection bits for rows `start..start + n` in 64-bit blocks
/// — the all-rows-match shortcut of the pushdown filters.
pub(crate) fn emit_all_set(start: usize, n: usize, emit: &mut impl FnMut(usize, u64, usize)) {
    let mut k = 0;
    while k < n {
        let take = (n - k).min(64);
        let mask = if take == 64 {
            u64::MAX
        } else {
            (1u64 << take) - 1
        };
        emit(start + k, mask, take);
        k += take;
    }
}

/// Compression ratio = compressed bytes / uncompressed bytes, where the
/// uncompressed representation is `len * value_width_bytes`.
pub fn compression_ratio(column: &dyn IntColumn, value_width_bytes: usize) -> f64 {
    if column.is_empty() {
        return 0.0;
    }
    column.size_bytes() as f64 / (column.len() * value_width_bytes) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_ratio_empty_is_zero() {
        let c = ForCodec::encode(&[], 128);
        assert_eq!(compression_ratio(&c, 8), 0.0);
    }

    #[test]
    fn compression_ratio_reports_fraction() {
        let values: Vec<u64> = (0..1000).collect();
        let c = ForCodec::encode(&values, 128);
        let r = compression_ratio(&c, 8);
        assert!(r > 0.0 && r < 1.0, "ratio {r} should compress");
    }
}
