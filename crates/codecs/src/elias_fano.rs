//! Quasi-succinct Elias-Fano encoding of monotone (non-decreasing) sequences.
//!
//! Values are split into `l = max(0, floor(log2(u/n)))` explicit lower bits
//! (bit-packed) and upper bits stored as a unary-coded bit vector: element `i`
//! with high part `h_i` sets bit `h_i + i`.  Random access to element `i` is
//! `((select1(i) - i) << l) | low(i)`.  The representation takes roughly
//! `2 + log2(u/n)` bits per element (§4.1).

use crate::IntColumn;
use leco_bitpack::{BitVec, PackedArray};

/// Elias-Fano encoded monotone sequence.
#[derive(Debug, Clone)]
pub struct EliasFano {
    low: PackedArray,
    high: BitVec,
    low_bits: u8,
    /// Minimum value, subtracted before encoding so unsorted-by-offset data
    /// starting far from zero still encodes compactly.
    base: u64,
    len: usize,
}

/// Error returned when the input sequence is not monotone non-decreasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotMonotone {
    /// Index of the first out-of-order element.
    pub at: usize,
}

impl std::fmt::Display for NotMonotone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sequence is not monotone non-decreasing at index {}",
            self.at
        )
    }
}

impl std::error::Error for NotMonotone {}

impl EliasFano {
    /// Encode a monotone non-decreasing sequence.
    pub fn encode(values: &[u64]) -> Result<Self, NotMonotone> {
        for (i, w) in values.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(NotMonotone { at: i + 1 });
            }
        }
        let n = values.len();
        if n == 0 {
            return Ok(Self {
                low: PackedArray::from_values(&[], 0),
                high: BitVec::new(),
                low_bits: 0,
                base: 0,
                len: 0,
            });
        }
        let base = values[0];
        let universe = values[n - 1] - base;
        // l = floor(log2(u / n)), clamped to [0, 63].
        let low_bits = if universe == 0 {
            0u8
        } else {
            let ratio = (universe / n as u64).max(1);
            (63 - ratio.leading_zeros()) as u8
        };
        let low_mask = if low_bits == 0 {
            0
        } else {
            (1u64 << low_bits) - 1
        };
        let lows: Vec<u64> = values.iter().map(|&v| (v - base) & low_mask).collect();
        let low = PackedArray::from_values(&lows, low_bits);

        let max_high = (universe >> low_bits) as usize;
        let mut high = BitVec::zeros(max_high + n + 1);
        for (i, &v) in values.iter().enumerate() {
            let h = ((v - base) >> low_bits) as usize;
            high.set(h + i);
        }
        high.build_index();
        Ok(Self {
            low,
            high,
            low_bits,
            base,
            len: n,
        })
    }
}

impl IntColumn for EliasFano {
    fn name(&self) -> &'static str {
        "Elias-Fano"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        // Fixed header: base (8), low_bits (1), len (8).
        17 + self.low.size_bytes() + self.high.size_bytes()
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        let pos = self.high.select1(i as u64).expect("select within bounds") as u64;
        let h = pos - i as u64;
        self.base + ((h << self.low_bits) | self.low.get(i))
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len);
        // Sequential decode: walk the high bit vector once.
        let mut i = 0usize;
        let mut pos = 0usize;
        while i < self.len {
            while !self.high.get(pos) {
                pos += 1;
            }
            let h = (pos - i) as u64;
            out.push(self.base + ((h << self.low_bits) | self.low.get(i)));
            pos += 1;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_round_trip() {
        // The binary sequence from §4.1 of the paper.
        let values = vec![
            0b00000u64, 0b00011, 0b01101, 0b10000, 0b10010, 0b10011, 0b11010, 0b11101,
        ];
        let c = EliasFano::encode(&values).unwrap();
        assert_eq!(c.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
    }

    #[test]
    fn rejects_unsorted() {
        let err = EliasFano::encode(&[3, 2, 5]).unwrap_err();
        assert_eq!(err.at, 1);
    }

    #[test]
    fn handles_duplicates() {
        let values = vec![5u64, 5, 5, 5, 9, 9, 10];
        let c = EliasFano::encode(&values).unwrap();
        assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn empty_and_singleton() {
        let c = EliasFano::encode(&[]).unwrap();
        assert_eq!(c.len(), 0);
        let c = EliasFano::encode(&[42]).unwrap();
        assert_eq!(c.get(0), 42);
        assert_eq!(c.decode_all(), vec![42]);
    }

    #[test]
    fn large_base_small_gaps() {
        let values: Vec<u64> = (0..10_000u64).map(|i| u64::MAX / 2 + i * 3).collect();
        let c = EliasFano::encode(&values).unwrap();
        assert_eq!(c.decode_all(), values);
        // Quasi-succinct: ~2 + log2(u/n) ≈ 2 + log2(3) bits/elem → well under 8 bits.
        assert!(c.size_bytes() * 8 < values.len() * 8);
    }

    #[test]
    fn bits_per_element_close_to_bound() {
        let n = 100_000u64;
        let values: Vec<u64> = (0..n).map(|i| i * 40).collect();
        let c = EliasFano::encode(&values).unwrap();
        let bits_per_elem = c.size_bytes() as f64 * 8.0 / n as f64;
        let bound = 2.0 + ((values[values.len() - 1] / n) as f64).log2().ceil();
        assert!(
            bits_per_elem < bound + 2.0,
            "bits/elem {bits_per_elem} should be near the quasi-succinct bound {bound}"
        );
    }

    proptest! {
        #[test]
        fn prop_round_trip(mut values in proptest::collection::vec(0u64..1_000_000_000, 0..500)) {
            values.sort_unstable();
            let c = EliasFano::encode(&values).unwrap();
            prop_assert_eq!(c.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(c.get(i), v);
            }
        }
    }
}
