//! Delta encoding with fixed-length frames ("Delta-fix" in the paper).
//!
//! Each frame stores its first value explicitly followed by the bit-packed
//! ZigZag differences between consecutive values.  Random access to position
//! `i` requires sequentially decoding the frame prefix up to `i`, which is why
//! Delta is an order of magnitude slower than FOR/LeCo on point accesses
//! (§4.3.2) while often achieving an excellent compression ratio.

use crate::{emit_all_set, IntColumn};
use leco_bitpack::{bits_for, zigzag_decode, zigzag_encode};

#[derive(Debug, Clone)]
struct Frame {
    /// First (anchor) value of the frame.
    first: u64,
    /// Bits per packed zigzag delta.
    width: u8,
    /// Starting bit offset of this frame's payload.
    bit_offset: u64,
}

/// Delta-encoded integer column with fixed-length frames.
#[derive(Debug, Clone)]
pub struct DeltaCodec {
    frames: Vec<Frame>,
    payload: Vec<u64>,
    payload_bits: usize,
    frame_len: usize,
    len: usize,
}

impl DeltaCodec {
    /// Encode `values` using frames of `frame_len` values.
    pub fn encode(values: &[u64], frame_len: usize) -> Self {
        assert!(frame_len > 0, "frame_len must be positive");
        let mut frames = Vec::with_capacity(values.len() / frame_len + 1);
        let mut writer = leco_bitpack::BitWriter::with_capacity(values.len() * 8);
        for chunk in values.chunks(frame_len) {
            let first = chunk[0];
            // Deltas between consecutive values, zigzag-mapped so negative
            // steps stay small.
            let deltas: Vec<u64> = chunk
                .windows(2)
                .map(|w| zigzag_encode(w[1].wrapping_sub(w[0]) as i64))
                .collect();
            let max = deltas.iter().copied().max().unwrap_or(0);
            let width = bits_for(max);
            frames.push(Frame {
                first,
                width,
                bit_offset: writer.len_bits() as u64,
            });
            for &d in &deltas {
                writer.write(d, width);
            }
        }
        let (payload, payload_bits) = writer.finish();
        Self {
            frames,
            payload,
            payload_bits,
            frame_len,
            len: values.len(),
        }
    }

    /// Frame length used at encode time.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Evaluate the inclusive predicate `lo <= v <= hi` without materialising
    /// the column — predicate pushdown for Delta.
    ///
    /// Each frame's anchor is compared straight from the 9-byte header;
    /// the remaining rows ride [`leco_bitpack::filter_deltas_range`], which
    /// fuses ZigZag decode, prefix summation and the range test into the
    /// bit-extraction loop (the reconstructed values only ever exist in a
    /// register).  Zero-width frames (constant runs) resolve entirely from
    /// the header.
    ///
    /// `emit` receives `(row, mask, n)` triples as in
    /// [`crate::ForCodec::filter_range_pushdown`].  Returns `(rows_skipped,
    /// rows_examined)`: header-resolved rows vs. rows reconstructed in the
    /// fused kernel.  Delta has no model inverse — every non-constant row is
    /// examined — so the win over decode-then-filter is the fusion, not
    /// skipping; the two counts still sum to the column length.
    pub fn filter_range_pushdown(
        &self,
        lo: u64,
        hi: u64,
        mut emit: impl FnMut(usize, u64, usize),
    ) -> (u64, u64) {
        let (mut skipped, mut examined) = (0u64, 0u64);
        let mut start = 0usize;
        for f in &self.frames {
            let n = (self.len - start).min(self.frame_len);
            let anchor_sel = lo <= hi && (lo..=hi).contains(&f.first);
            if f.width == 0 {
                // Every row equals the anchor: resolved from the header.
                skipped += n as u64;
                if anchor_sel {
                    emit_all_set(start, n, &mut emit);
                }
            } else {
                skipped += 1;
                emit(start, anchor_sel as u64, 1);
                if n > 1 {
                    examined += (n - 1) as u64;
                    leco_bitpack::filter_deltas_range(
                        &self.payload,
                        f.bit_offset as usize,
                        f.width,
                        f.first,
                        n - 1,
                        lo,
                        hi,
                        |k, mask, nb| emit(start + 1 + k, mask, nb),
                    );
                }
            }
            start += n;
        }
        (skipped, examined)
    }

    /// Append the on-disk byte image of this column (frame anchors + widths
    /// followed by the bit-packed gap payload); length equals
    /// [`IntColumn::size_bytes`].
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        for f in &self.frames {
            out.extend_from_slice(&f.first.to_le_bytes());
            out.push(f.width);
        }
        let payload_bytes = leco_bitpack::div_ceil(self.payload_bits, 8);
        for (i, w) in self.payload.iter().enumerate() {
            let bytes = w.to_le_bytes();
            let take = (payload_bytes - i * 8).min(8);
            out.extend_from_slice(&bytes[..take]);
        }
    }
}

impl IntColumn for DeltaCodec {
    fn name(&self) -> &'static str {
        "Delta-fix"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        self.frames.len() * 9 + leco_bitpack::div_ceil(self.payload_bits, 8)
    }

    /// Random access must replay the frame prefix (the defining cost of Delta).
    fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        let frame_idx = i / self.frame_len;
        let in_frame = i % self.frame_len;
        let f = &self.frames[frame_idx];
        let mut current = f.first;
        if f.width == 0 || in_frame == 0 {
            return current;
        }
        let mut bit_pos = f.bit_offset as usize;
        for _ in 0..in_frame {
            let d = zigzag_decode(leco_bitpack::stream::read_bits(
                &self.payload,
                bit_pos,
                f.width,
            ));
            bit_pos += f.width as usize;
            current = current.wrapping_add(d as u64);
        }
        current
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        let written = out.len();
        out.resize(written + self.len, 0);
        let mut dst = &mut out[written..];
        for f in &self.frames {
            let n = dst.len().min(self.frame_len);
            let (seg, rest) = dst.split_at_mut(n);
            let (head, gaps) = seg.split_first_mut().expect("frames are non-empty");
            *head = f.first;
            // Fused kernel: zigzag decode and prefix summation ride the
            // bit-extraction loop, so the raw gaps are never materialised.
            leco_bitpack::unpack_deltas_into(
                &self.payload,
                f.bit_offset as usize,
                f.width,
                f.first,
                gaps,
            );
            dst = rest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_monotone() {
        let values: Vec<u64> = (0..5_000u64).map(|i| i * i).collect();
        let c = DeltaCodec::encode(&values, 256);
        assert_eq!(c.decode_all(), values);
        for i in [0usize, 1, 255, 256, 257, 4999] {
            assert_eq!(c.get(i), values[i]);
        }
    }

    #[test]
    fn round_trip_non_monotone() {
        let values: Vec<u64> = vec![10, 3, 99, 1, 1, 1, 500, 2, 7];
        let c = DeltaCodec::encode(&values, 4);
        assert_eq!(c.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
    }

    #[test]
    fn sorted_small_gaps_compress_well() {
        let values: Vec<u64> = (0..100_000u64).map(|i| 7_000_000 + i * 2).collect();
        let c = DeltaCodec::encode(&values, 1024);
        // Every delta is 2 → zigzag 4 → 3 bits per value.
        assert!(c.size_bytes() * 8 < values.len() * 5);
    }

    #[test]
    fn constant_run_zero_width() {
        let values = vec![9u64; 300];
        let c = DeltaCodec::encode(&values, 100);
        assert_eq!(c.size_bytes(), 3 * 9);
        assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn wrapping_extremes() {
        let values = vec![0u64, u64::MAX, 0, u64::MAX / 2];
        let c = DeltaCodec::encode(&values, 8);
        assert_eq!(c.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
    }

    fn pushdown_selection(c: &DeltaCodec, lo: u64, hi: u64) -> (Vec<bool>, u64, u64) {
        let mut sel = vec![false; c.len()];
        let (skipped, examined) = c.filter_range_pushdown(lo, hi, |row, mask, n| {
            for k in 0..n {
                if (mask >> k) & 1 == 1 {
                    assert!(!sel[row + k], "row {} double-emitted", row + k);
                    sel[row + k] = true;
                }
            }
        });
        (sel, skipped, examined)
    }

    #[test]
    fn pushdown_filter_matches_decode_then_compare() {
        let values: Vec<u64> = (0..3_000u64).map(|i| 500 + i * 2 + (i % 11)).collect();
        let c = DeltaCodec::encode(&values, 256);
        for (lo, hi) in [
            (0u64, u64::MAX),
            (0, 499),
            (values[70], values[70]),
            (values[100], values[2_500]),
            (9, 4),
        ] {
            let (sel, skipped, examined) = pushdown_selection(&c, lo, hi);
            let want: Vec<bool> = values
                .iter()
                .map(|v| lo <= hi && (lo..=hi).contains(v))
                .collect();
            assert_eq!(sel, want, "[{lo},{hi}]");
            assert_eq!(skipped + examined, values.len() as u64, "[{lo},{hi}]");
        }
    }

    #[test]
    fn pushdown_constant_frames_resolve_from_headers() {
        let values = vec![9u64; 300];
        let c = DeltaCodec::encode(&values, 100);
        let (sel, skipped, examined) = pushdown_selection(&c, 9, 9);
        assert!(sel.iter().all(|&s| s));
        assert_eq!((skipped, examined), (300, 0));
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(any::<u64>(), 1..400),
                           frame_len in 1usize..128) {
            let c = DeltaCodec::encode(&values, frame_len);
            prop_assert_eq!(c.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(c.get(i), v);
            }
        }

        #[test]
        fn prop_pushdown_matches_reference(values in proptest::collection::vec(any::<u64>(), 1..400),
                                           frame_len in 1usize..128,
                                           lo in any::<u64>(), hi in any::<u64>()) {
            let c = DeltaCodec::encode(&values, frame_len);
            let (lo, hi) = if lo.is_multiple_of(2) {
                let anchor = values[lo as usize % values.len()];
                (anchor.saturating_sub(lo % 13), anchor.saturating_add(hi % 1_000))
            } else {
                (lo.min(hi), lo.max(hi))
            };
            let (sel, skipped, examined) = pushdown_selection(&c, lo, hi);
            let want: Vec<bool> = values.iter().map(|v| (lo..=hi).contains(v)).collect();
            prop_assert_eq!(sel, want);
            prop_assert_eq!(skipped + examined, values.len() as u64);
        }
    }
}
