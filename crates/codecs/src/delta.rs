//! Delta encoding with fixed-length frames ("Delta-fix" in the paper).
//!
//! Each frame stores its first value explicitly followed by the bit-packed
//! ZigZag differences between consecutive values.  Random access to position
//! `i` requires sequentially decoding the frame prefix up to `i`, which is why
//! Delta is an order of magnitude slower than FOR/LeCo on point accesses
//! (§4.3.2) while often achieving an excellent compression ratio.

use crate::IntColumn;
use leco_bitpack::{bits_for, zigzag_decode, zigzag_encode};

#[derive(Debug, Clone)]
struct Frame {
    /// First (anchor) value of the frame.
    first: u64,
    /// Bits per packed zigzag delta.
    width: u8,
    /// Starting bit offset of this frame's payload.
    bit_offset: u64,
}

/// Delta-encoded integer column with fixed-length frames.
#[derive(Debug, Clone)]
pub struct DeltaCodec {
    frames: Vec<Frame>,
    payload: Vec<u64>,
    payload_bits: usize,
    frame_len: usize,
    len: usize,
}

impl DeltaCodec {
    /// Encode `values` using frames of `frame_len` values.
    pub fn encode(values: &[u64], frame_len: usize) -> Self {
        assert!(frame_len > 0, "frame_len must be positive");
        let mut frames = Vec::with_capacity(values.len() / frame_len + 1);
        let mut writer = leco_bitpack::BitWriter::with_capacity(values.len() * 8);
        for chunk in values.chunks(frame_len) {
            let first = chunk[0];
            // Deltas between consecutive values, zigzag-mapped so negative
            // steps stay small.
            let deltas: Vec<u64> = chunk
                .windows(2)
                .map(|w| zigzag_encode(w[1].wrapping_sub(w[0]) as i64))
                .collect();
            let max = deltas.iter().copied().max().unwrap_or(0);
            let width = bits_for(max);
            frames.push(Frame {
                first,
                width,
                bit_offset: writer.len_bits() as u64,
            });
            for &d in &deltas {
                writer.write(d, width);
            }
        }
        let (payload, payload_bits) = writer.finish();
        Self {
            frames,
            payload,
            payload_bits,
            frame_len,
            len: values.len(),
        }
    }

    /// Frame length used at encode time.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Append the on-disk byte image of this column (frame anchors + widths
    /// followed by the bit-packed gap payload); length equals
    /// [`IntColumn::size_bytes`].
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        for f in &self.frames {
            out.extend_from_slice(&f.first.to_le_bytes());
            out.push(f.width);
        }
        let payload_bytes = leco_bitpack::div_ceil(self.payload_bits, 8);
        for (i, w) in self.payload.iter().enumerate() {
            let bytes = w.to_le_bytes();
            let take = (payload_bytes - i * 8).min(8);
            out.extend_from_slice(&bytes[..take]);
        }
    }
}

impl IntColumn for DeltaCodec {
    fn name(&self) -> &'static str {
        "Delta-fix"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        self.frames.len() * 9 + leco_bitpack::div_ceil(self.payload_bits, 8)
    }

    /// Random access must replay the frame prefix (the defining cost of Delta).
    fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        let frame_idx = i / self.frame_len;
        let in_frame = i % self.frame_len;
        let f = &self.frames[frame_idx];
        let mut current = f.first;
        if f.width == 0 || in_frame == 0 {
            return current;
        }
        let mut bit_pos = f.bit_offset as usize;
        for _ in 0..in_frame {
            let d = zigzag_decode(leco_bitpack::stream::read_bits(
                &self.payload,
                bit_pos,
                f.width,
            ));
            bit_pos += f.width as usize;
            current = current.wrapping_add(d as u64);
        }
        current
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        let written = out.len();
        out.resize(written + self.len, 0);
        let mut dst = &mut out[written..];
        for f in &self.frames {
            let n = dst.len().min(self.frame_len);
            let (seg, rest) = dst.split_at_mut(n);
            let (head, gaps) = seg.split_first_mut().expect("frames are non-empty");
            *head = f.first;
            // Fused kernel: zigzag decode and prefix summation ride the
            // bit-extraction loop, so the raw gaps are never materialised.
            leco_bitpack::unpack_deltas_into(
                &self.payload,
                f.bit_offset as usize,
                f.width,
                f.first,
                gaps,
            );
            dst = rest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_monotone() {
        let values: Vec<u64> = (0..5_000u64).map(|i| i * i).collect();
        let c = DeltaCodec::encode(&values, 256);
        assert_eq!(c.decode_all(), values);
        for i in [0usize, 1, 255, 256, 257, 4999] {
            assert_eq!(c.get(i), values[i]);
        }
    }

    #[test]
    fn round_trip_non_monotone() {
        let values: Vec<u64> = vec![10, 3, 99, 1, 1, 1, 500, 2, 7];
        let c = DeltaCodec::encode(&values, 4);
        assert_eq!(c.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
    }

    #[test]
    fn sorted_small_gaps_compress_well() {
        let values: Vec<u64> = (0..100_000u64).map(|i| 7_000_000 + i * 2).collect();
        let c = DeltaCodec::encode(&values, 1024);
        // Every delta is 2 → zigzag 4 → 3 bits per value.
        assert!(c.size_bytes() * 8 < values.len() * 5);
    }

    #[test]
    fn constant_run_zero_width() {
        let values = vec![9u64; 300];
        let c = DeltaCodec::encode(&values, 100);
        assert_eq!(c.size_bytes(), 3 * 9);
        assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn wrapping_extremes() {
        let values = vec![0u64, u64::MAX, 0, u64::MAX / 2];
        let c = DeltaCodec::encode(&values, 8);
        assert_eq!(c.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(any::<u64>(), 1..400),
                           frame_len in 1usize..128) {
            let c = DeltaCodec::encode(&values, frame_len);
            prop_assert_eq!(c.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(c.get(i), v);
            }
        }
    }
}
