//! Byte-oriented range Asymmetric Numeral System (rANS) entropy coder.
//!
//! rANS is the entropy-coding baseline of the microbenchmark (§4.1): it
//! approaches Shannon's entropy of the byte distribution but, unlike the
//! lightweight schemes, it has no notion of serial correlation and cannot do
//! random access — a point access must decode the whole block (§4.3).
//!
//! The implementation is a textbook static rANS with a 12-bit frequency
//! scale, 32-bit state and byte-wise renormalisation.  Integers are
//! serialised as little-endian `u64`s before coding, so columns with many
//! leading zero bytes still compress reasonably.

use crate::IntColumn;

const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS; // 4096
const RANS_L: u32 = 1 << 23; // lower bound of the normalised state interval

/// Static symbol statistics for the 256 byte values.
#[derive(Debug, Clone)]
struct FreqTable {
    freq: [u16; 256],
    cum: [u32; 257],
    /// slot -> symbol lookup, SCALE entries.
    slot_to_sym: Vec<u8>,
}

impl FreqTable {
    /// Build a scaled frequency table from raw byte counts.  Every symbol that
    /// occurs gets a frequency of at least one slot.
    fn build(counts: &[u64; 256]) -> Self {
        let total: u64 = counts.iter().sum();
        assert!(total > 0, "cannot build a frequency table from no data");
        let mut freq = [0u16; 256];
        let mut assigned: u32 = 0;
        // Initial proportional assignment with a floor of 1 for present symbols.
        for s in 0..256 {
            if counts[s] == 0 {
                continue;
            }
            let f = ((counts[s] as u128 * SCALE as u128) / total as u128) as u32;
            let f = f.max(1);
            freq[s] = f as u16;
            assigned += f;
        }
        // Rebalance so the total is exactly SCALE: shrink/grow the most
        // frequent symbols (they can absorb the error with least distortion).
        while assigned != SCALE {
            if assigned > SCALE {
                // steal one slot from the largest freq > 1
                let s = (0..256)
                    .filter(|&s| freq[s] > 1)
                    .max_by_key(|&s| freq[s])
                    .expect("some symbol must have freq > 1");
                freq[s] -= 1;
                assigned -= 1;
            } else {
                let s = (0..256)
                    .filter(|&s| freq[s] > 0)
                    .max_by_key(|&s| freq[s])
                    .expect("some symbol present");
                freq[s] += 1;
                assigned += 1;
            }
        }
        let mut cum = [0u32; 257];
        for s in 0..256 {
            cum[s + 1] = cum[s] + freq[s] as u32;
        }
        let mut slot_to_sym = vec![0u8; SCALE as usize];
        for s in 0..256 {
            for slot in cum[s]..cum[s + 1] {
                slot_to_sym[slot as usize] = s as u8;
            }
        }
        Self {
            freq,
            cum,
            slot_to_sym,
        }
    }

    fn serialized_bytes(&self) -> usize {
        // 256 x u16 frequencies; everything else is derivable.
        512
    }
}

/// rANS-compressed integer column.
#[derive(Debug, Clone)]
pub struct RansCodec {
    table: Option<FreqTable>,
    /// Renormalisation byte stream (read back to front while decoding... the
    /// encoder pushes in reverse symbol order so the decoder pops forwards).
    stream: Vec<u8>,
    /// Final encoder state.
    state: u32,
    len: usize,
}

impl RansCodec {
    /// Encode `values`.
    pub fn encode(values: &[u64]) -> Self {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        if bytes.is_empty() {
            return Self {
                table: None,
                stream: Vec::new(),
                state: RANS_L,
                len: 0,
            };
        }
        let mut counts = [0u64; 256];
        for &b in &bytes {
            counts[b as usize] += 1;
        }
        let table = FreqTable::build(&counts);
        let mut stream = Vec::with_capacity(bytes.len());
        let mut x: u32 = RANS_L;
        // Encode in reverse so decoding yields the original order.
        for &sym in bytes.iter().rev() {
            let f = table.freq[sym as usize] as u32;
            let c = table.cum[sym as usize];
            // Renormalise: keep x within [RANS_L, (RANS_L >> SCALE_BITS) << 8 * f)
            let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
            while x >= x_max {
                stream.push((x & 0xFF) as u8);
                x >>= 8;
            }
            x = ((x / f) << SCALE_BITS) + (x % f) + c;
        }
        Self {
            table: Some(table),
            stream,
            state: x,
            len: values.len(),
        }
    }

    fn decode_bytes(&self) -> Vec<u8> {
        let n_bytes = self.len * 8;
        let mut out = Vec::with_capacity(n_bytes);
        let table = match &self.table {
            Some(t) => t,
            None => return out,
        };
        let mut x = self.state;
        let mut pos = self.stream.len();
        for _ in 0..n_bytes {
            let slot = x & (SCALE - 1);
            let sym = table.slot_to_sym[slot as usize];
            out.push(sym);
            let f = table.freq[sym as usize] as u32;
            let c = table.cum[sym as usize];
            x = f * (x >> SCALE_BITS) + slot - c;
            while x < RANS_L && pos > 0 {
                pos -= 1;
                x = (x << 8) | self.stream[pos] as u32;
            }
        }
        out
    }
}

impl IntColumn for RansCodec {
    fn name(&self) -> &'static str {
        "rANS"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        let table = self.table.as_ref().map_or(0, |t| t.serialized_bytes());
        // state (4 bytes) + length (8 bytes) + stream + table
        12 + self.stream.len() + table
    }

    /// Random access requires a full block decode — rANS has no entry points.
    fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        self.decode_all()[i]
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        let bytes = self.decode_bytes();
        out.reserve(self.len);
        for chunk in bytes.chunks_exact(8) {
            out.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_skewed_bytes() {
        // Mostly-zero upper bytes: typical integer column.
        let values: Vec<u64> = (0..10_000u64).map(|i| i % 977).collect();
        let c = RansCodec::encode(&values);
        assert_eq!(c.decode_all(), values);
        // Entropy coding should beat raw 8 bytes/value easily here.
        assert!(c.size_bytes() < values.len() * 8 / 2);
    }

    #[test]
    fn round_trip_uniform_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let values: Vec<u64> = (0..2_000).map(|_| rng.gen()).collect();
        let c = RansCodec::encode(&values);
        assert_eq!(c.decode_all(), values);
        // Uniform random bytes should not compress (allow table+stream overhead).
        assert!(c.size_bytes() as f64 > values.len() as f64 * 8.0 * 0.95);
    }

    #[test]
    fn single_value() {
        let c = RansCodec::encode(&[42]);
        assert_eq!(c.decode_all(), vec![42]);
        assert_eq!(c.get(0), 42);
    }

    #[test]
    fn empty_input() {
        let c = RansCodec::encode(&[]);
        assert_eq!(c.len(), 0);
        assert!(c.decode_all().is_empty());
    }

    #[test]
    fn constant_column_approaches_byte_entropy() {
        let values = vec![0xABCDu64; 50_000];
        let c = RansCodec::encode(&values);
        assert_eq!(c.decode_all()[..10], values[..10]);
        // Byte distribution: six zero bytes + two distinct bytes per value,
        // entropy ≈ 1.06 bits/byte → ≈ 1.06 bytes/value.  Check we are within
        // 25% of that (table + renormalisation overhead).
        let per_value = c.size_bytes() as f64 / values.len() as f64;
        assert!(per_value < 1.35, "got {per_value} bytes/value");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(any::<u64>(), 0..300)) {
            let c = RansCodec::encode(&values);
            prop_assert_eq!(c.decode_all(), values);
        }

        #[test]
        fn prop_round_trip_small_alphabet(values in proptest::collection::vec(0u64..10, 0..300)) {
            let c = RansCodec::encode(&values);
            prop_assert_eq!(c.decode_all(), values);
        }
    }
}
