//! Run-Length Encoding.
//!
//! RLE is the degenerate case of Frame-of-Reference where every frame contains
//! identical values (§2).  We store the run values and the run start positions
//! as two bit-packed arrays; random access binary-searches the start
//! positions.

use crate::IntColumn;
use leco_bitpack::PackedArray;

/// Run-length encoded integer column.
#[derive(Debug, Clone)]
pub struct RleCodec {
    /// Value of each run.
    values: PackedArray,
    /// Starting logical position of each run (strictly increasing, first = 0).
    starts: PackedArray,
    len: usize,
}

impl RleCodec {
    /// Encode `values`.
    pub fn encode(values: &[u64]) -> Self {
        let mut run_values = Vec::new();
        let mut run_starts = Vec::new();
        let mut i = 0usize;
        while i < values.len() {
            let v = values[i];
            run_values.push(v);
            run_starts.push(i as u64);
            let mut j = i + 1;
            while j < values.len() && values[j] == v {
                j += 1;
            }
            i = j;
        }
        Self {
            values: PackedArray::from_values_auto(&run_values),
            starts: PackedArray::from_values_auto(&run_starts),
            len: values.len(),
        }
    }

    /// Number of runs.
    pub fn num_runs(&self) -> usize {
        self.values.len()
    }

    /// Index of the run containing logical position `i`.
    fn run_of(&self, i: usize) -> usize {
        // Binary search for the last start <= i.
        let mut lo = 0usize;
        let mut hi = self.starts.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.starts.get(mid) as usize <= i {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl IntColumn for RleCodec {
    fn name(&self) -> &'static str {
        "RLE"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        // Two widths + two lengths as fixed metadata, then the packed payloads.
        4 + self.values.size_bytes() + self.starts.size_bytes()
    }

    fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        self.values.get(self.run_of(i))
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len);
        for r in 0..self.values.len() {
            let start = self.starts.get(r) as usize;
            let end = if r + 1 < self.starts.len() {
                self.starts.get(r + 1) as usize
            } else {
                self.len
            };
            out.extend(std::iter::repeat_n(self.values.get(r), end - start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_runs() {
        let values = vec![5u64, 5, 5, 7, 7, 1, 1, 1, 1, 9];
        let c = RleCodec::encode(&values);
        assert_eq!(c.num_runs(), 4);
        assert_eq!(c.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
    }

    #[test]
    fn all_distinct_degrades_gracefully() {
        let values: Vec<u64> = (0..100).collect();
        let c = RleCodec::encode(&values);
        assert_eq!(c.num_runs(), 100);
        assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn single_long_run_is_tiny() {
        let values = vec![123u64; 1_000_000];
        let c = RleCodec::encode(&values);
        assert_eq!(c.num_runs(), 1);
        assert!(c.size_bytes() < 64);
        assert_eq!(c.get(999_999), 123);
    }

    #[test]
    fn empty_input() {
        let c = RleCodec::encode(&[]);
        assert_eq!(c.len(), 0);
        assert!(c.decode_all().is_empty());
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(0u64..16, 0..500)) {
            // Small alphabet ⇒ plenty of runs.
            let c = RleCodec::encode(&values);
            prop_assert_eq!(c.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(c.get(i), v);
            }
        }
    }
}
