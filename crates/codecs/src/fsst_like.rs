//! FSST-style static-symbol-table string compression.
//!
//! This is a simplified reimplementation of the idea behind FSST (Boncz,
//! Neumann, Leis, VLDB 2020), the dictionary-based string baseline of the
//! paper's string benchmark (§4.7): a table of up to 254 multi-byte symbols is
//! learned from a sample of the corpus; encoding greedily replaces the longest
//! matching symbol with a 1-byte code, and bytes with no matching symbol are
//! emitted as a 2-byte escape sequence.
//!
//! Random access needs a per-string offset.  Like the optimisation discussed
//! in the paper, the offset array can be delta-encoded in blocks of `B`
//! strings: larger `B` saves space but forces a partial scan per access,
//! which is exactly the trade-off swept in Figure 15.

use leco_bitpack::{bits_for, PackedArray};
use std::collections::HashMap;

/// Escape code: the next byte in the stream is a literal.
const ESCAPE: u8 = 255;
/// Maximum number of learned symbols.
const MAX_SYMBOLS: usize = 254;
/// Maximum symbol length in bytes.
const MAX_SYMBOL_LEN: usize = 8;
/// Number of learning iterations.
const LEARN_ITERATIONS: usize = 3;

/// A learned symbol table mapping codes 0..n to byte strings.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    symbols: Vec<Vec<u8>>,
    /// Longest-match lookup: first byte -> candidate symbol ids sorted by
    /// decreasing length.
    by_first_byte: Vec<Vec<u16>>,
}

impl SymbolTable {
    /// Learn a symbol table from sample strings.
    pub fn learn(samples: &[&[u8]]) -> Self {
        let mut table = Self {
            symbols: Vec::new(),
            by_first_byte: vec![Vec::new(); 256],
        };
        for _ in 0..LEARN_ITERATIONS {
            table = table.refine(samples);
        }
        table
    }

    /// One learning round: encode the sample with the current table, count
    /// which concatenations of adjacent output units occur most often, and
    /// build a new table from the highest-gain candidates.
    fn refine(&self, samples: &[&[u8]]) -> Self {
        let mut gains: HashMap<Vec<u8>, u64> = HashMap::new();
        for s in samples {
            // Current segmentation of the string.
            let mut units: Vec<&[u8]> = Vec::new();
            let mut pos = 0;
            while pos < s.len() {
                let (len, _) = self.longest_match(&s[pos..]);
                units.push(&s[pos..pos + len]);
                pos += len;
            }
            // Candidate symbols: single units and concatenations of two
            // adjacent units (capped at MAX_SYMBOL_LEN).
            for w in units.windows(2) {
                let cat_len = w[0].len() + w[1].len();
                if cat_len <= MAX_SYMBOL_LEN {
                    let mut cat = w[0].to_vec();
                    cat.extend_from_slice(w[1]);
                    *gains.entry(cat).or_insert(0) += cat_len as u64;
                }
            }
            for u in units {
                if u.len() >= 2 {
                    *gains.entry(u.to_vec()).or_insert(0) += u.len() as u64;
                }
            }
        }
        let mut candidates: Vec<(Vec<u8>, u64)> = gains.into_iter().collect();
        // gain ≈ bytes covered minus the 1-byte code we will emit.
        candidates.sort_by(|a, b| {
            let ga = a.1 * (a.0.len() as u64 - 1) / a.0.len() as u64;
            let gb = b.1 * (b.0.len() as u64 - 1) / b.0.len() as u64;
            gb.cmp(&ga).then_with(|| a.0.cmp(&b.0))
        });
        let mut symbols: Vec<Vec<u8>> = candidates
            .into_iter()
            .take(MAX_SYMBOLS)
            .map(|(s, _)| s)
            .collect();
        symbols.sort();
        symbols.dedup();
        let mut by_first_byte: Vec<Vec<u16>> = vec![Vec::new(); 256];
        for (id, sym) in symbols.iter().enumerate() {
            by_first_byte[sym[0] as usize].push(id as u16);
        }
        for list in &mut by_first_byte {
            list.sort_by_key(|&id| std::cmp::Reverse(symbols[id as usize].len()));
        }
        Self {
            symbols,
            by_first_byte,
        }
    }

    /// Longest symbol matching a prefix of `s`.  Returns (consumed, code):
    /// `code == None` means "no symbol, emit an escaped literal byte".
    #[inline]
    fn longest_match(&self, s: &[u8]) -> (usize, Option<u16>) {
        if s.is_empty() {
            return (0, None);
        }
        for &id in &self.by_first_byte[s[0] as usize] {
            let sym = &self.symbols[id as usize];
            if s.len() >= sym.len() && &s[..sym.len()] == sym.as_slice() {
                return (sym.len(), Some(id));
            }
        }
        (1, None)
    }

    /// Number of learned symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if no symbols were learned.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Serialized size: per symbol one length byte plus the symbol bytes.
    pub fn size_bytes(&self) -> usize {
        2 + self.symbols.iter().map(|s| 1 + s.len()).sum::<usize>()
    }

    /// Encode one string.
    pub fn encode_into(&self, s: &[u8], out: &mut Vec<u8>) {
        let mut pos = 0;
        while pos < s.len() {
            let (len, code) = self.longest_match(&s[pos..]);
            match code {
                Some(c) => out.push(c as u8),
                None => {
                    out.push(ESCAPE);
                    out.push(s[pos]);
                }
            }
            pos += len;
        }
    }

    /// Decode an encoded byte run into `out`.
    pub fn decode_into(&self, enc: &[u8], out: &mut Vec<u8>) {
        let mut pos = 0;
        while pos < enc.len() {
            let c = enc[pos];
            if c == ESCAPE {
                out.push(enc[pos + 1]);
                pos += 2;
            } else {
                out.extend_from_slice(&self.symbols[c as usize]);
                pos += 1;
            }
        }
    }
}

/// FSST-style compressed string column.
#[derive(Debug, Clone)]
pub struct FsstLike {
    table: SymbolTable,
    /// Concatenated encoded strings.
    payload: Vec<u8>,
    /// End offset of each string in `payload` when `offset_block == 0`
    /// (plain offsets); otherwise the per-block anchors + packed deltas.
    offsets: Offsets,
    len: usize,
}

#[derive(Debug, Clone)]
enum Offsets {
    /// One absolute end-offset per string.
    Plain(Vec<u32>),
    /// Delta-encoded offsets in blocks of `block` strings: per block an
    /// absolute anchor (start offset), then the bit-packed encoded lengths of
    /// each string in the block.
    DeltaBlocks {
        block: usize,
        anchors: Vec<u32>,
        lengths: PackedArray,
    },
}

impl FsstLike {
    /// Compress `strings`.  `offset_block == 0` keeps a plain offset array
    /// (fastest random access); `offset_block = B > 0` delta-encodes offsets
    /// in blocks of `B` (smaller, slower random access) — Figure 15's sweep.
    pub fn encode(strings: &[Vec<u8>], offset_block: usize) -> Self {
        let sample_refs: Vec<&[u8]> = strings
            .iter()
            .step_by((strings.len() / 4096).max(1))
            .map(|s| s.as_slice())
            .collect();
        let table = SymbolTable::learn(&sample_refs);
        let mut payload = Vec::new();
        let mut ends: Vec<u32> = Vec::with_capacity(strings.len());
        let mut lengths: Vec<u64> = Vec::with_capacity(strings.len());
        for s in strings {
            let before = payload.len();
            table.encode_into(s, &mut payload);
            ends.push(payload.len() as u32);
            lengths.push((payload.len() - before) as u64);
        }
        let offsets = if offset_block == 0 {
            Offsets::Plain(ends)
        } else {
            let mut anchors = Vec::new();
            for i in (0..ends.len()).step_by(offset_block) {
                // anchor = start offset of the block
                anchors.push(if i == 0 { 0 } else { ends[i - 1] });
            }
            let max_len = lengths.iter().copied().max().unwrap_or(0);
            Offsets::DeltaBlocks {
                block: offset_block,
                anchors,
                lengths: PackedArray::from_values(&lengths, bits_for(max_len)),
            }
        };
        Self {
            table,
            payload,
            offsets,
            len: strings.len(),
        }
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes (payload + offsets + symbol table).
    pub fn size_bytes(&self) -> usize {
        let offsets = match &self.offsets {
            Offsets::Plain(ends) => ends.len() * 4,
            Offsets::DeltaBlocks {
                anchors, lengths, ..
            } => anchors.len() * 4 + lengths.size_bytes(),
        };
        self.table.size_bytes() + self.payload.len() + offsets
    }

    /// Byte range of string `i` in the payload.
    fn range(&self, i: usize) -> (usize, usize) {
        match &self.offsets {
            Offsets::Plain(ends) => {
                let start = if i == 0 { 0 } else { ends[i - 1] as usize };
                (start, ends[i] as usize)
            }
            Offsets::DeltaBlocks {
                block,
                anchors,
                lengths,
            } => {
                let b = i / block;
                let mut start = anchors[b] as usize;
                // Partial scan of the block: the random-access cost that grows
                // with the delta block size.
                for j in (b * block)..i {
                    start += lengths.get(j) as usize;
                }
                (start, start + lengths.get(i) as usize)
            }
        }
    }

    /// Random access: decode string `i`.
    pub fn get(&self, i: usize) -> Vec<u8> {
        assert!(i < self.len, "index {i} out of bounds");
        let (start, end) = self.range(i);
        let mut out = Vec::new();
        self.table.decode_into(&self.payload[start..end], &mut out);
        out
    }

    /// Decode every string.
    pub fn decode_all(&self) -> Vec<Vec<u8>> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Compression ratio against the raw concatenated string bytes
    /// (+ 4-byte offsets, matching how the paper accounts for FSST).
    pub fn compression_ratio(&self, strings: &[Vec<u8>]) -> f64 {
        let raw: usize = strings.iter().map(|s| s.len()).sum::<usize>() + strings.len() * 4;
        self.size_bytes() as f64 / raw as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn emails(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("com.gmail@user{:05}.mailbox", i * 37 % 100_000).into_bytes())
            .collect()
    }

    #[test]
    fn round_trip_plain_offsets() {
        let strings = emails(500);
        let c = FsstLike::encode(&strings, 0);
        assert_eq!(c.decode_all(), strings);
    }

    #[test]
    fn round_trip_delta_blocks() {
        let strings = emails(500);
        for block in [20, 40, 60, 80, 100] {
            let c = FsstLike::encode(&strings, block);
            assert_eq!(c.decode_all(), strings, "block {block}");
            assert_eq!(c.get(499), strings[499]);
        }
    }

    #[test]
    fn compresses_repetitive_text() {
        let strings = emails(2000);
        let c = FsstLike::encode(&strings, 0);
        assert!(
            c.compression_ratio(&strings) < 0.8,
            "ratio {} should show compression on repetitive strings",
            c.compression_ratio(&strings)
        );
    }

    #[test]
    fn delta_blocks_smaller_than_plain() {
        let strings = emails(2000);
        let plain = FsstLike::encode(&strings, 0);
        let blocked = FsstLike::encode(&strings, 100);
        assert!(blocked.size_bytes() < plain.size_bytes());
    }

    #[test]
    fn handles_binary_and_empty_strings() {
        let strings: Vec<Vec<u8>> = vec![vec![], vec![255, 0, 255], b"abc".to_vec(), vec![255; 20]];
        let c = FsstLike::encode(&strings, 0);
        assert_eq!(c.decode_all(), strings);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_round_trip(strings in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..60),
            block in 0usize..30)
        {
            let c = FsstLike::encode(&strings, block);
            prop_assert_eq!(c.decode_all(), strings.clone());
            for (i, s) in strings.iter().enumerate() {
                prop_assert_eq!(&c.get(i), s);
            }
        }
    }
}
