//! Order-preserving dictionary encoding.
//!
//! The column is rewritten as bit-packed codes into a sorted dictionary of the
//! distinct values, so `code(a) < code(b) ⇔ a < b`.  Dictionary encoding is
//! the `Default` scheme of most columnar systems (§5.1) and the substrate of
//! the hash-probe experiment (§4.5), where the dictionary *values* array is
//! additionally compressed with FOR or LeCo.

use crate::IntColumn;
use leco_bitpack::PackedArray;

/// Order-preserving dictionary-encoded column.
#[derive(Debug, Clone)]
pub struct OpDict {
    /// Sorted distinct values.
    dict: Vec<u64>,
    /// Per-row code (index into `dict`), bit-packed.
    codes: PackedArray,
}

impl OpDict {
    /// Encode `values`.
    pub fn encode(values: &[u64]) -> Self {
        let mut dict: Vec<u64> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let codes: Vec<u64> = values
            .iter()
            .map(|v| dict.binary_search(v).expect("value present in dict") as u64)
            .collect();
        Self {
            dict,
            codes: PackedArray::from_values_auto(&codes),
        }
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// The sorted dictionary.
    pub fn dictionary(&self) -> &[u64] {
        &self.dict
    }

    /// Code of row `i` (without dictionary lookup).
    pub fn code(&self, i: usize) -> u64 {
        self.codes.get(i)
    }

    /// Order-preserving code of `value`, if present.
    pub fn code_of(&self, value: u64) -> Option<u64> {
        self.dict.binary_search(&value).ok().map(|c| c as u64)
    }

    /// Size of the code array alone (the dictionary may be stored/compressed
    /// separately, as in the §4.5 experiment).
    pub fn codes_size_bytes(&self) -> usize {
        self.codes.size_bytes()
    }

    /// Size of the plain (uncompressed) dictionary.
    pub fn dict_size_bytes(&self) -> usize {
        self.dict.len() * 8
    }

    /// Append the on-disk byte image (width byte, packed codes, dictionary);
    /// length equals [`IntColumn::size_bytes`].
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.push(self.codes.width());
        for w in self.codes.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for v in &self.dict {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

impl IntColumn for OpDict {
    fn name(&self) -> &'static str {
        "Dict"
    }

    fn len(&self) -> usize {
        self.codes.len()
    }

    fn size_bytes(&self) -> usize {
        // width byte + code payload + dictionary values
        1 + self.codes.size_bytes() + self.dict_size_bytes()
    }

    fn get(&self, i: usize) -> u64 {
        self.dict[self.codes.get(i) as usize]
    }

    fn decode_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.codes.len());
        for i in 0..self.codes.len() {
            out.push(self.dict[self.codes.get(i) as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_and_order_preservation() {
        let values = vec![50u64, 10, 10, 99, 50, 3];
        let d = OpDict::encode(&values);
        assert_eq!(d.cardinality(), 4);
        assert_eq!(d.decode_all(), values);
        // order preserving: codes sorted like values
        assert!(d.code_of(3).unwrap() < d.code_of(10).unwrap());
        assert!(d.code_of(10).unwrap() < d.code_of(50).unwrap());
        assert!(d.code_of(50).unwrap() < d.code_of(99).unwrap());
        assert_eq!(d.code_of(7), None);
    }

    #[test]
    fn low_cardinality_compresses() {
        let values: Vec<u64> = (0..100_000u64).map(|i| 1_000_000_000 + (i % 8)).collect();
        let d = OpDict::encode(&values);
        // 3 bits per code + 64 bytes dictionary.
        assert!(d.size_bytes() < 100_000);
    }

    #[test]
    fn high_cardinality_does_not_compress() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 1_000_003).collect();
        let d = OpDict::encode(&values);
        // Dictionary is as large as the data: no benefit (paper §2).
        assert!(d.size_bytes() >= values.len() * 8);
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(0u64..1000, 0..400)) {
            let d = OpDict::encode(&values);
            prop_assert_eq!(d.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(d.get(i), v);
                prop_assert_eq!(d.dictionary()[d.code(i) as usize], v);
            }
        }

        #[test]
        fn prop_codes_order_preserving(values in proptest::collection::vec(any::<u64>(), 2..200)) {
            let d = OpDict::encode(&values);
            for i in 0..values.len() {
                for j in (i + 1)..values.len() {
                    let (a, b) = (values[i], values[j]);
                    let (ca, cb) = (d.code_of(a).unwrap(), d.code_of(b).unwrap());
                    prop_assert_eq!(a.cmp(&b), ca.cmp(&cb));
                }
            }
        }
    }
}
