//! A miniature columnar execution engine used for the end-to-end system
//! evaluation (§5.1) — a stand-in for the Apache Arrow + Parquet stack.
//!
//! The engine keeps the pieces of that stack that the LeCo experiments
//! exercise and nothing more:
//!
//! * columns encoded with pluggable lightweight encodings
//!   ([`encoding::Encoding`]: plain, dictionary, Delta, FOR, LeCo),
//! * a row-group based [`file::TableFile`] whose byte images are written to
//!   and read back from real files (optionally block-compressed with the
//!   `lzb` codec standing in for zstd),
//! * selection [`bitmap::Bitmap`]s and late materialisation: filters produce
//!   bitmaps, downstream operators only decode the qualifying positions,
//! * the compute kernels of the paper's queries ([`exec`]): range-filter
//!   pushdown, group-by average aggregation and bitmap sum aggregation,
//! * per-query [`exec::QueryStats`] splitting time into an I/O and a CPU
//!   component, which is exactly the breakdown plotted in Figures 18–21.
//!
//! Scans decode chunks through the word-parallel bulk path
//! ([`EncodedColumn::decode_into`]); LeCo chunks are persisted in the byte
//! format specified by `docs/FORMAT.md` at the repository root.
//!
//! ```
//! use leco_columnar::{EncodedColumn, Encoding};
//!
//! let values: Vec<u64> = (0..20_000u64).map(|i| 500 + i * 3).collect();
//! let col = EncodedColumn::encode(&values, Encoding::Leco);
//! assert!(col.size_bytes() < values.len()); // sub-byte per value
//! assert_eq!(col.get(12_345), values[12_345]);
//!
//! let mut out = Vec::with_capacity(col.len());
//! col.decode_into(&mut out);
//! assert_eq!(out, values);
//! ```

pub mod bitmap;
pub mod encoding;
pub mod exec;
pub mod file;

pub use bitmap::Bitmap;
pub use encoding::{EncodedColumn, Encoding};
pub use exec::{group_by_avg, sum_selected, QueryStats, ScanScratch};
pub use file::{BlockCompression, ChunkReader, TableFile, TableFileOptions};
