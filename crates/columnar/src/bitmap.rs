//! Selection bitmaps used for late materialisation.
//!
//! Filters produce a [`Bitmap`] over row positions; downstream operators
//! (group-by, aggregation) consult the bitmap and only decode qualifying
//! positions, which is what makes random-access-friendly encodings such as
//! FOR and LeCo shine on selective queries (§5.1).

/// A fixed-length bitmap over row positions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; leco_bitpack::div_ceil(len, 64)],
            len,
        }
    }

    /// All-ones bitmap of `len` bits.
    pub fn all_set(len: usize) -> Self {
        let mut b = Self::new(len);
        for i in 0..len {
            b.set(i);
        }
        b
    }

    /// Clear every bit and resize to `len` positions, reusing the existing
    /// word buffer — per-morsel scratch bitmaps are reset this way so a scan
    /// allocates once per worker, not once per row group.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(leco_bitpack::div_ceil(len, 64), 0);
        self.len = len;
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers no positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set position `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Get position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set every position in `[from, to)`.  Whole 64-bit words inside the
    /// range are filled in one store each, so setting a dense span (a sorted
    /// filter's hit range, or an unfiltered morsel) costs O(words), not
    /// O(bits).
    pub fn set_range(&mut self, from: usize, to: usize) {
        let to = to.min(self.len);
        if from >= to {
            return;
        }
        let (w0, w1) = (from / 64, (to - 1) / 64);
        let head = u64::MAX << (from % 64);
        let tail = u64::MAX >> (63 - (to - 1) % 64);
        if w0 == w1 {
            self.words[w0] |= head & tail;
        } else {
            self.words[w0] |= head;
            for w in &mut self.words[w0 + 1..w1] {
                *w = u64::MAX;
            }
            self.words[w1] |= tail;
        }
    }

    /// OR `nbits` (at most 64) selection bits of `mask` into positions
    /// `pos..pos + nbits` (bit `k` of `mask` lands at position `pos + k`).
    ///
    /// This is how the packed-domain filter kernels publish their per-block
    /// masks: one or two word ORs per 64 rows, at arbitrary (unaligned) bit
    /// positions.  Bits of `mask` at and above `nbits` are ignored.
    #[inline]
    pub fn or_mask_at(&mut self, pos: usize, mask: u64, nbits: usize) {
        debug_assert!(nbits <= 64 && pos + nbits <= self.len);
        if nbits == 0 {
            return;
        }
        let mask = if nbits == 64 {
            mask
        } else {
            mask & ((1u64 << nbits) - 1)
        };
        let (w, off) = (pos / 64, pos % 64);
        self.words[w] |= mask << off;
        if off != 0 && off + nbits > 64 {
            self.words[w + 1] |= mask >> (64 - off);
        }
    }

    /// Number of set positions.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Selectivity = set positions / total positions.
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Number of set positions in `[from, to)` — used by the scan kernels to
    /// decide between per-position random access and a bulk row-group decode.
    pub fn count_ones_in(&self, from: usize, to: usize) -> usize {
        let to = to.min(self.len);
        if from >= to {
            return 0;
        }
        let mut count = 0usize;
        let mut i = from;
        while i < to {
            if i.is_multiple_of(64) && i + 64 <= to {
                count += self.words[i / 64].count_ones() as usize;
                i += 64;
            } else {
                count += self.get(i) as usize;
                i += 1;
            }
        }
        count
    }

    /// True if no position in `[from, to)` is set — used for row-group
    /// skipping.  Early-exits at the first set bit.
    pub fn all_zero_in(&self, from: usize, to: usize) -> bool {
        self.iter_ones_in(from, to).next().is_none()
    }

    /// Intersect with another bitmap of the same length.
    pub fn and(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterate over set positions in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(w_idx, &w)| {
                let mut bits = w;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w_idx * 64 + tz)
                })
            })
            .filter(move |&i| i < self.len)
    }

    /// Iterate over the set positions in `[from, to)` in increasing order,
    /// visiting only the words that overlap the range — so a scan that walks
    /// row groups pays O(range) per group instead of re-skipping the whole
    /// bitmap prefix every time.
    pub fn iter_ones_in(&self, from: usize, to: usize) -> impl Iterator<Item = usize> + '_ {
        let to = to.min(self.len);
        let from = from.min(to);
        let w0 = from / 64;
        let w1 = to.div_ceil(64);
        self.words[w0..w1]
            .iter()
            .enumerate()
            .flat_map(move |(k, &w)| {
                let w_idx = w0 + k;
                let mut bits = w;
                if w_idx == w0 {
                    bits &= u64::MAX << (from % 64);
                }
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w_idx * 64 + tz)
                })
            })
            .filter(move |&i| i < to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new(200);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(199);
        assert_eq!(b.count_ones(), 4);
        assert!(b.get(63) && b.get(64));
        assert!(!b.get(65));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 199]);
    }

    #[test]
    fn range_and_skip_detection() {
        let mut b = Bitmap::new(1_000);
        b.set_range(300, 400);
        assert!(b.all_zero_in(0, 300));
        assert!(!b.all_zero_in(250, 350));
        assert!(b.all_zero_in(400, 1_000));
        assert_eq!(b.count_ones(), 100);
        assert!((b.selectivity() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn and_intersects() {
        let mut a = Bitmap::new(128);
        a.set_range(0, 100);
        let mut b = Bitmap::new(128);
        b.set_range(50, 128);
        a.and(&b);
        assert_eq!(a.iter_ones().count(), 50);
        assert!(a.get(50) && a.get(99) && !a.get(100) && !a.get(49));
    }

    proptest! {
        #[test]
        fn prop_or_mask_matches_per_bit_loop(
            len in 1usize..400,
            pos in 0usize..336,
            nbits in 0usize..65,
            mask in any::<u64>(),
        ) {
            let pos = pos.min(len);
            let nbits = nbits.min(len - pos);
            let mut fast = Bitmap::new(len);
            fast.or_mask_at(pos, mask, nbits);
            let mut slow = Bitmap::new(len);
            for k in 0..nbits {
                if (mask >> k) & 1 == 1 {
                    slow.set(pos + k);
                }
            }
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_set_range_matches_per_bit_loop(
            len in 1usize..400,
            from in 0usize..420,
            span in 0usize..300,
        ) {
            let mut fast = Bitmap::new(len);
            fast.set_range(from, from + span);
            let mut slow = Bitmap::new(len);
            for i in from..(from + span).min(len) {
                slow.set(i);
            }
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn reset_reuses_buffer_and_clears_bits() {
        let mut b = Bitmap::new(100);
        b.set_range(0, 100);
        b.reset(300);
        assert_eq!(b.len(), 300);
        assert_eq!(b.count_ones(), 0);
        b.set(299);
        b.reset(10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn all_set_and_empty() {
        let b = Bitmap::all_set(77);
        assert_eq!(b.count_ones(), 77);
        let e = Bitmap::new(0);
        assert!(e.is_empty());
        assert_eq!(e.selectivity(), 0.0);
    }

    #[test]
    fn ranged_iteration_and_count() {
        let mut b = Bitmap::new(300);
        for p in [0usize, 63, 64, 65, 128, 200, 299] {
            b.set(p);
        }
        for (from, to) in [
            (0, 300),
            (0, 0),
            (64, 65),
            (63, 129),
            (65, 65),
            (201, 300),
            (64, 64),
        ] {
            let got: Vec<usize> = b.iter_ones_in(from, to).collect();
            let expected: Vec<usize> = b.iter_ones().filter(|&p| p >= from && p < to).collect();
            assert_eq!(got, expected, "range {from}..{to}");
            assert_eq!(
                b.count_ones_in(from, to),
                expected.len(),
                "range {from}..{to}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_iter_matches_get(positions in proptest::collection::btree_set(0usize..500, 0..60)) {
            let mut b = Bitmap::new(500);
            for &p in &positions {
                b.set(p);
            }
            let from_iter: Vec<usize> = b.iter_ones().collect();
            let expected: Vec<usize> = positions.into_iter().collect();
            prop_assert_eq!(from_iter, expected);
        }

        #[test]
        fn prop_ranged_iter_matches_filtered_full_iter(
            positions in proptest::collection::btree_set(0usize..500, 0..60),
            from in 0usize..520,
            span in 0usize..200,
        ) {
            let mut b = Bitmap::new(500);
            for &p in &positions {
                b.set(p);
            }
            let to = from + span;
            let got: Vec<usize> = b.iter_ones_in(from, to).collect();
            let expected: Vec<usize> = b.iter_ones().filter(|&p| p >= from && p < to).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
