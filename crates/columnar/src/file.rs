//! Row-group based table files.
//!
//! `TableFile::write` encodes every column per row group, persists the byte
//! images to a real file on disk (optionally block-compressed with `lzb`, the
//! workspace's zstd stand-in) and keeps zone maps (per-chunk min/max) for
//! row-group skipping.  Scans read the chunk bytes back from the file — that
//! is the I/O component of the §5.1 time breakdowns — and then operate on the
//! equivalent in-memory encoded column for the CPU component.

use crate::encoding::{EncodedColumn, Encoding};
use crate::exec::QueryStats;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Optional general-purpose block compression layered on top of the
/// lightweight encodings (§5.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCompression {
    /// No block compression.
    None,
    /// `lzb`, the workspace's LZ77-style stand-in for zstd.
    Lzb,
}

/// Options controlling how a table file is written.
#[derive(Debug, Clone, Copy)]
pub struct TableFileOptions {
    /// Column encoding applied to every chunk.
    pub encoding: Encoding,
    /// Rows per row group (the paper uses 10M-row groups; scale down for
    /// laptop-sized experiments).
    pub row_group_size: usize,
    /// Block compression applied to the chunk byte images.
    pub block_compression: BlockCompression,
}

impl Default for TableFileOptions {
    fn default() -> Self {
        Self {
            encoding: Encoding::Leco,
            row_group_size: 100_000,
            block_compression: BlockCompression::None,
        }
    }
}

/// Zone map and location of one column chunk inside the file.
#[derive(Debug, Clone)]
struct ChunkMeta {
    offset: u64,
    stored_len: u64,
    min: u64,
    max: u64,
}

/// Magic that terminates a reopenable table file.
const FOOTER_MAGIC: &[u8; 8] = b"LECOTBL1";
/// Version byte of the footer block.
const FOOTER_VERSION: u8 = 1;

fn bad_data(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Incremental little-endian reader over the footer block.
struct FooterReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FooterReader<'a> {
    fn take(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(bad_data("table footer truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> std::io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> std::io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> std::io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> std::io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// One row group: per-column chunk metadata plus the in-memory encodings.
#[derive(Debug)]
struct RowGroup {
    row_start: usize,
    rows: usize,
    chunks: Vec<ChunkMeta>,
    columns: Vec<EncodedColumn>,
}

/// A written table file plus the in-memory structures needed to query it.
#[derive(Debug)]
pub struct TableFile {
    path: PathBuf,
    column_names: Vec<String>,
    options: TableFileOptions,
    row_groups: Vec<RowGroup>,
    num_rows: usize,
    file_bytes: u64,
}

impl TableFile {
    /// Encode `columns` (named by `column_names`, all of equal length) into a
    /// file at `path`.
    pub fn write<P: AsRef<Path>>(
        path: P,
        column_names: &[&str],
        columns: &[Vec<u64>],
        options: TableFileOptions,
    ) -> std::io::Result<Self> {
        assert_eq!(column_names.len(), columns.len(), "one name per column");
        assert!(!columns.is_empty(), "at least one column required");
        let num_rows = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == num_rows),
            "all columns must have the same length"
        );
        let mut file = File::create(path.as_ref())?;
        let mut row_groups = Vec::new();
        let mut offset = 0u64;
        let rg_size = options.row_group_size.max(1);
        let mut row_start = 0usize;
        while row_start < num_rows || (num_rows == 0 && row_start == 0) {
            let rows = rg_size.min(num_rows - row_start);
            if rows == 0 && num_rows > 0 {
                break;
            }
            let mut chunks = Vec::with_capacity(columns.len());
            let mut encoded_cols = Vec::with_capacity(columns.len());
            for col in columns {
                let slice = &col[row_start..row_start + rows];
                let encoded = EncodedColumn::encode(slice, options.encoding);
                let image = encoded.byte_image();
                let stored = match options.block_compression {
                    BlockCompression::None => image,
                    BlockCompression::Lzb => leco_codecs::lzb::compress(&image),
                };
                file.write_all(&stored)?;
                chunks.push(ChunkMeta {
                    offset,
                    stored_len: stored.len() as u64,
                    min: slice.iter().copied().min().unwrap_or(0),
                    max: slice.iter().copied().max().unwrap_or(0),
                });
                offset += stored.len() as u64;
                encoded_cols.push(encoded);
            }
            row_groups.push(RowGroup {
                row_start,
                rows,
                chunks,
                columns: encoded_cols,
            });
            row_start += rows;
            if num_rows == 0 {
                break;
            }
        }
        let table = Self {
            path: path.as_ref().to_path_buf(),
            column_names: column_names.iter().map(|s| s.to_string()).collect(),
            options,
            row_groups,
            num_rows,
            file_bytes: offset,
        };
        // Footer after the data region: lets `TableFile::open` reload the
        // metadata without touching chunk offsets (they are all relative to
        // the file start, before the footer).
        let footer = table.serialize_footer();
        file.write_all(&footer)?;
        file.write_all(&(footer.len() as u64).to_le_bytes())?;
        file.write_all(FOOTER_MAGIC)?;
        file.flush()?;
        Ok(table)
    }

    fn serialize_footer(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(FOOTER_VERSION);
        out.push(self.options.encoding.tag());
        out.push(match self.options.block_compression {
            BlockCompression::None => 0u8,
            BlockCompression::Lzb => 1u8,
        });
        out.extend_from_slice(&(self.options.row_group_size as u64).to_le_bytes());
        out.extend_from_slice(&(self.num_rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.column_names.len() as u32).to_le_bytes());
        for name in &self.column_names {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out.extend_from_slice(&(self.row_groups.len() as u32).to_le_bytes());
        for rg in &self.row_groups {
            out.extend_from_slice(&(rg.row_start as u64).to_le_bytes());
            out.extend_from_slice(&(rg.rows as u64).to_le_bytes());
            for chunk in &rg.chunks {
                out.extend_from_slice(&chunk.offset.to_le_bytes());
                out.extend_from_slice(&chunk.stored_len.to_le_bytes());
                out.extend_from_slice(&chunk.min.to_le_bytes());
                out.extend_from_slice(&chunk.max.to_le_bytes());
            }
        }
        out
    }

    /// Reopen a table file written by [`Self::write`]: parse the footer,
    /// read every chunk back and rebuild the in-memory encoded columns.
    ///
    /// Only files whose encoding has a self-describing byte image can be
    /// reopened (`Plain`, `Leco`, `LecoVar` —
    /// see [`EncodedColumn::from_byte_image`]); other encodings return
    /// `ErrorKind::Unsupported`.  A truncated or corrupt footer returns
    /// `ErrorKind::InvalidData`.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let mut file = File::open(path.as_ref())?;
        let total = file.metadata()?.len();
        if total < 16 {
            return Err(bad_data(format!(
                "{}: too short to hold a table footer",
                path.as_ref().display()
            )));
        }
        let mut tail = [0u8; 16];
        file.seek(SeekFrom::End(-16))?;
        file.read_exact(&mut tail)?;
        if &tail[8..] != FOOTER_MAGIC {
            return Err(bad_data(format!(
                "{}: missing table footer magic",
                path.as_ref().display()
            )));
        }
        let footer_len = u64::from_le_bytes(tail[..8].try_into().unwrap());
        if footer_len.checked_add(16).is_none_or(|end| end > total) {
            return Err(bad_data("table footer length exceeds the file".into()));
        }
        let mut footer = vec![0u8; footer_len as usize];
        file.seek(SeekFrom::End(-16 - footer_len as i64))?;
        file.read_exact(&mut footer)?;

        let mut r = FooterReader {
            bytes: &footer,
            pos: 0,
        };
        let version = r.u8()?;
        if version != FOOTER_VERSION {
            return Err(bad_data(format!("unknown table footer version {version}")));
        }
        let encoding_tag = r.u8()?;
        let encoding = Encoding::from_tag(encoding_tag)
            .ok_or_else(|| bad_data(format!("unknown encoding tag {encoding_tag}")))?;
        let block_compression = match r.u8()? {
            0 => BlockCompression::None,
            1 => BlockCompression::Lzb,
            other => return Err(bad_data(format!("unknown block-compression tag {other}"))),
        };
        let row_group_size = r.u64()? as usize;
        let num_rows = r.u64()? as usize;
        let ncols = r.u32()? as usize;
        let mut column_names = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let len = r.u16()? as usize;
            let name = std::str::from_utf8(r.take(len)?)
                .map_err(|_| bad_data("column name is not UTF-8".into()))?;
            column_names.push(name.to_string());
        }
        let n_row_groups = r.u32()? as usize;
        let options = TableFileOptions {
            encoding,
            row_group_size,
            block_compression,
        };

        let mut row_groups = Vec::with_capacity(n_row_groups);
        let mut file_bytes = 0u64;
        let mut stored = Vec::new();
        for _ in 0..n_row_groups {
            let row_start = r.u64()? as usize;
            let rows = r.u64()? as usize;
            let mut chunks = Vec::with_capacity(ncols);
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let meta = ChunkMeta {
                    offset: r.u64()?,
                    stored_len: r.u64()?,
                    min: r.u64()?,
                    max: r.u64()?,
                };
                if meta
                    .offset
                    .checked_add(meta.stored_len)
                    .is_none_or(|end| end > total - 16 - footer_len)
                {
                    return Err(bad_data("chunk extends past the data region".into()));
                }
                stored.clear();
                stored.resize(meta.stored_len as usize, 0);
                file.seek(SeekFrom::Start(meta.offset))?;
                file.read_exact(&mut stored)?;
                let image = match block_compression {
                    BlockCompression::None => std::mem::take(&mut stored),
                    BlockCompression::Lzb => leco_codecs::lzb::decompress(&stored),
                };
                let column = EncodedColumn::from_byte_image(&image, encoding)?;
                if column.len() != rows {
                    return Err(bad_data(format!(
                        "chunk decodes to {} values, row group holds {rows}",
                        column.len()
                    )));
                }
                file_bytes = file_bytes.max(meta.offset + meta.stored_len);
                chunks.push(meta);
                columns.push(column);
            }
            row_groups.push(RowGroup {
                row_start,
                rows,
                chunks,
                columns,
            });
        }
        let reopened: usize = row_groups.iter().map(|g| g.rows).sum();
        if reopened != num_rows {
            return Err(bad_data(format!(
                "row groups hold {reopened} rows, footer claims {num_rows}"
            )));
        }
        Ok(Self {
            path: path.as_ref().to_path_buf(),
            column_names,
            options,
            row_groups,
            num_rows,
            file_bytes,
        })
    }

    /// Total size of the data file in bytes.
    pub fn file_size_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of row groups.
    pub fn num_row_groups(&self) -> usize {
        self.row_groups.len()
    }

    /// Options the file was written with.
    pub fn options(&self) -> &TableFileOptions {
        &self.options
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.column_names.iter().position(|n| n == name)
    }

    /// Row range `[start, start + rows)` of row group `rg`.
    pub fn row_group_range(&self, rg: usize) -> (usize, usize) {
        let g = &self.row_groups[rg];
        (g.row_start, g.row_start + g.rows)
    }

    /// Zone map (min, max) of column `col` in row group `rg`.
    pub fn zone_map(&self, rg: usize, col: usize) -> (u64, u64) {
        let c = &self.row_groups[rg].chunks[col];
        (c.min, c.max)
    }

    /// Open a [`ChunkReader`] over this file: one shared descriptor through
    /// which any number of workers can read chunks concurrently.
    pub fn chunk_reader(&self) -> std::io::Result<ChunkReader<'_>> {
        Ok(ChunkReader {
            table: self,
            file: PositionedFile::open(&self.path)?,
        })
    }

    /// Stored (possibly block-compressed) length in bytes of chunk
    /// `(rg, col)` — what one positioned read of that chunk transfers.
    pub fn chunk_stored_len(&self, rg: usize, col: usize) -> u64 {
        self.row_groups[rg].chunks[col].stored_len
    }

    /// The in-memory encoded column of chunk `(rg, col)`, without charging
    /// any I/O.  Compute-only consumers (e.g. a worker whose chunk bytes were
    /// already fetched by the read-ahead stage) use this directly.
    pub fn chunk_encoded(&self, rg: usize, col: usize) -> &EncodedColumn {
        &self.row_groups[rg].columns[col]
    }

    /// Read the chunk's bytes back from disk (charging I/O, and CPU for block
    /// decompression) and return the in-memory encoded column for compute.
    ///
    /// Convenience wrapper that opens a fresh [`ChunkReader`] per call; scans
    /// that touch many chunks should open one reader and reuse it.
    pub fn read_chunk(
        &self,
        rg: usize,
        col: usize,
        stats: &mut QueryStats,
    ) -> std::io::Result<&EncodedColumn> {
        self.chunk_reader()?.read_chunk(rg, col, stats)
    }

    /// Sum of the encoded chunk sizes of one column across row groups
    /// (before block compression); used to report per-column footprints.
    pub fn column_encoded_bytes(&self, col: usize) -> u64 {
        self.row_groups
            .iter()
            .map(|g| g.columns[col].size_bytes() as u64)
            .sum()
    }
}

/// One open file descriptor supporting positioned (`pread`-style) reads that
/// take `&self`, so concurrent readers never contend on a seek cursor.
#[derive(Debug)]
struct PositionedFile {
    file: File,
    /// Non-unix platforms lack a positioned read on `&File`; serialise
    /// seek+read pairs behind a lock there instead.
    #[cfg(not(unix))]
    cursor: std::sync::Mutex<()>,
}

impl PositionedFile {
    fn open(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            file: File::open(path)?,
            #[cfg(not(unix))]
            cursor: std::sync::Mutex::new(()),
        })
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        let _guard = self.cursor.lock().unwrap_or_else(|e| e.into_inner());
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// The immutable read half of a [`TableFile`]: a shared descriptor plus a
/// borrow of the table's metadata and in-memory encodings.
///
/// Every method takes `&self`, and the underlying reads are positioned
/// (`pread`), so one `ChunkReader` can be shared by a whole pool of scan
/// workers without a mutex around the file cursor.  Per-worker mutable state
/// (decode buffers, selection bitmaps, partial aggregates) lives in
/// [`crate::exec::ScanScratch`] instead.
#[derive(Debug)]
pub struct ChunkReader<'a> {
    table: &'a TableFile,
    file: PositionedFile,
}

impl<'a> ChunkReader<'a> {
    /// The table this reader was opened on.
    pub fn table(&self) -> &'a TableFile {
        self.table
    }

    /// Read the stored bytes of chunk `(rg, col)` into `buf` (overwriting
    /// it), charging I/O to `stats`.  Returns the number of bytes read.
    pub fn read_chunk_bytes(
        &self,
        rg: usize,
        col: usize,
        buf: &mut Vec<u8>,
        stats: &mut QueryStats,
    ) -> std::io::Result<u64> {
        let meta = &self.table.row_groups[rg].chunks[col];
        let io_start = leco_obs::Stopwatch::start();
        buf.clear();
        buf.resize(meta.stored_len as usize, 0);
        self.file.read_exact_at(buf, meta.offset)?;
        stats.charge_io(io_start.elapsed_secs(), meta.stored_len);
        Ok(meta.stored_len)
    }

    /// Read chunk `(rg, col)` — I/O plus block decompression if the file is
    /// block-compressed — and return the in-memory encoded column for
    /// compute.  `stats` is charged for the I/O and decompression CPU.
    pub fn read_chunk(
        &self,
        rg: usize,
        col: usize,
        stats: &mut QueryStats,
    ) -> std::io::Result<&'a EncodedColumn> {
        let mut buf = Vec::new();
        self.read_chunk_bytes(rg, col, &mut buf, stats)?;
        self.decompress_chunk(rg, col, &buf, stats);
        Ok(self.table.chunk_encoded(rg, col))
    }

    /// Block-decompress stored chunk bytes (no-op when the file is not
    /// block-compressed), charging CPU to `stats`.  Split out of
    /// [`Self::read_chunk`] so a read-ahead stage can run it off the workers'
    /// critical path.
    pub fn decompress_chunk(&self, rg: usize, col: usize, stored: &[u8], stats: &mut QueryStats) {
        if self.table.options.block_compression == BlockCompression::Lzb {
            let cpu_start = leco_obs::Stopwatch::start();
            let decompressed = leco_codecs::lzb::decompress(stored);
            stats.charge_cpu(cpu_start.elapsed_secs());
            // The decode path uses the in-memory column; assert the stored
            // image still matches its size so corruption cannot go unnoticed.
            debug_assert_eq!(
                decompressed.len(),
                self.table.chunk_encoded(rg, col).size_bytes()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::QueryStats;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "leco-columnar-test-{}-{}",
            std::process::id(),
            name
        ));
        p
    }

    fn sample_columns(n: usize) -> (Vec<&'static str>, Vec<Vec<u64>>) {
        let ts: Vec<u64> = (0..n as u64).map(|i| 1_000_000 + i).collect();
        let id: Vec<u64> = (0..n as u64).map(|i| i % 100 + 1).collect();
        let val: Vec<u64> = (0..n as u64).map(|i| i * 3 + (i % 7)).collect();
        (vec!["ts", "id", "val"], vec![ts, id, val])
    }

    #[test]
    fn write_and_read_chunks() {
        let (names, cols) = sample_columns(50_000);
        let path = tmp("basic");
        let file = TableFile::write(
            &path,
            &names,
            &cols,
            TableFileOptions {
                encoding: Encoding::Leco,
                row_group_size: 20_000,
                block_compression: BlockCompression::None,
            },
        )
        .unwrap();
        assert_eq!(file.num_rows(), 50_000);
        assert_eq!(file.num_row_groups(), 3);
        let mut stats = QueryStats::default();
        let chunk = file.read_chunk(1, 2, &mut stats).unwrap();
        let (start, _) = file.row_group_range(1);
        assert_eq!(chunk.get(0), cols[2][start]);
        assert!(stats.io_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_reader_shared_across_threads() {
        let (names, cols) = sample_columns(50_000);
        let path = tmp("shared");
        let file = TableFile::write(
            &path,
            &names,
            &cols,
            TableFileOptions {
                encoding: Encoding::Leco,
                row_group_size: 10_000,
                block_compression: BlockCompression::None,
            },
        )
        .unwrap();
        // One reader, one descriptor; positioned reads from many threads at
        // once must all see the right bytes (no shared-cursor corruption).
        let reader = file.chunk_reader().unwrap();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let reader = &reader;
                let cols = &cols;
                let file = &file;
                scope.spawn(move || {
                    for rg in 0..file.num_row_groups() {
                        let col = (rg + t) % 3;
                        let mut stats = QueryStats::default();
                        let chunk = reader.read_chunk(rg, col, &mut stats).unwrap();
                        let (start, _) = file.row_group_range(rg);
                        assert_eq!(chunk.get(17), cols[col][start + 17]);
                        assert_eq!(stats.chunks_read, 1);
                        assert_eq!(stats.io_bytes, file.chunk_stored_len(rg, col));
                    }
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn leco_file_smaller_than_default() {
        let (names, cols) = sample_columns(60_000);
        let p1 = tmp("leco");
        let p2 = tmp("default");
        let leco = TableFile::write(
            &p1,
            &names,
            &cols,
            TableFileOptions {
                encoding: Encoding::Leco,
                ..Default::default()
            },
        )
        .unwrap();
        let default = TableFile::write(
            &p2,
            &names,
            &cols,
            TableFileOptions {
                encoding: Encoding::Default,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(leco.file_size_bytes() < default.file_size_bytes());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn block_compression_shrinks_redundant_chunks() {
        let (names, cols) = sample_columns(60_000);
        let p1 = tmp("nolzb");
        let p2 = tmp("lzb");
        let plain = TableFile::write(
            &p1,
            &names,
            &cols,
            TableFileOptions {
                encoding: Encoding::Plain,
                block_compression: BlockCompression::None,
                ..Default::default()
            },
        )
        .unwrap();
        let compressed = TableFile::write(
            &p2,
            &names,
            &cols,
            TableFileOptions {
                encoding: Encoding::Plain,
                block_compression: BlockCompression::Lzb,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(compressed.file_size_bytes() < plain.file_size_bytes());
        // Reading a block-compressed chunk charges CPU time for decompression.
        let mut stats = QueryStats::default();
        compressed.read_chunk(0, 0, &mut stats).unwrap();
        assert!(stats.cpu_seconds >= 0.0 && stats.io_bytes > 0);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn reopen_round_trips_data_and_metadata() {
        let (names, cols) = sample_columns(25_000);
        for (encoding, compression, tag) in [
            (Encoding::Leco, BlockCompression::None, "leco"),
            (Encoding::LecoVar, BlockCompression::None, "lecovar"),
            (Encoding::Plain, BlockCompression::Lzb, "plain-lzb"),
        ] {
            let path = tmp(&format!("reopen-{tag}"));
            let written = TableFile::write(
                &path,
                &names,
                &cols,
                TableFileOptions {
                    encoding,
                    row_group_size: 7_000,
                    block_compression: compression,
                },
            )
            .unwrap();
            let reopened = TableFile::open(&path).unwrap();
            assert_eq!(reopened.num_rows(), written.num_rows(), "{tag}");
            assert_eq!(reopened.num_row_groups(), written.num_row_groups(), "{tag}");
            assert_eq!(reopened.column_index("val"), Some(2), "{tag}");
            assert_eq!(reopened.options().encoding, encoding, "{tag}");
            for rg in 0..reopened.num_row_groups() {
                assert_eq!(
                    reopened.row_group_range(rg),
                    written.row_group_range(rg),
                    "{tag}"
                );
                for (col, col_values) in cols.iter().enumerate() {
                    assert_eq!(
                        reopened.zone_map(rg, col),
                        written.zone_map(rg, col),
                        "{tag} rg {rg} col {col}"
                    );
                    let (start, end) = reopened.row_group_range(rg);
                    let chunk = reopened.chunk_encoded(rg, col);
                    for probe in [0usize, (end - start) / 2, end - start - 1] {
                        assert_eq!(
                            chunk.get(probe),
                            col_values[start + probe],
                            "{tag} rg {rg} col {col} row {probe}"
                        );
                    }
                }
            }
            // The reopened file still serves positioned chunk reads.
            let mut stats = QueryStats::default();
            let chunk = reopened.read_chunk(1, 2, &mut stats).unwrap();
            let (start, _) = reopened.row_group_range(1);
            assert_eq!(chunk.get(3), cols[2][start + 3], "{tag}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn reopen_rejects_corrupt_footers() {
        let (names, cols) = sample_columns(2_000);
        let path = tmp("reopen-corrupt");
        TableFile::write(&path, &names, &cols, TableFileOptions::default()).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncated to lose the footer tail.
        std::fs::write(&path, &good[..good.len() - 8]).unwrap();
        assert!(TableFile::open(&path).is_err());
        // Magic intact but footer length lies.
        let mut lying = good.clone();
        let at = lying.len() - 16;
        lying[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &lying).unwrap();
        assert!(TableFile::open(&path).is_err());
        // Entirely too short.
        std::fs::write(&path, b"tiny").unwrap();
        assert!(TableFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zone_maps_cover_chunk_ranges() {
        let (names, cols) = sample_columns(30_000);
        let path = tmp("zones");
        let file = TableFile::write(
            &path,
            &names,
            &cols,
            TableFileOptions {
                row_group_size: 10_000,
                ..Default::default()
            },
        )
        .unwrap();
        let (min, max) = file.zone_map(1, 0);
        let (start, end) = file.row_group_range(1);
        assert_eq!(min, cols[0][start]);
        assert_eq!(max, cols[0][end - 1]);
        assert_eq!(file.column_index("val"), Some(2));
        assert_eq!(file.column_index("missing"), None);
        std::fs::remove_file(&path).ok();
    }
}
