//! Compute kernels and query drivers for the §5.1 experiments.
//!
//! The engine uses late materialisation: the filter produces a selection
//! [`Bitmap`], and the group-by / aggregation kernels only random-access the
//! qualifying positions of the (still encoded) columns.  Every driver
//! accumulates a [`QueryStats`] separating I/O time (reading chunk bytes from
//! the data file) from CPU time (decoding + compute), which is the breakdown
//! plotted in Figures 18, 19 and 21.
//!
//! The module is layered so a parallel engine can drive it:
//!
//! * **stateless per-chunk kernels** ([`filter_chunk`], [`group_by_avg_chunk`],
//!   [`sum_selected_chunk`]) operate on one row group's encoded chunks plus
//!   explicitly passed scratch; they hold no references to the file and can
//!   run on any thread,
//! * **[`ScanScratch`]** bundles the per-worker mutable state the kernels
//!   write into (decode buffers, a selection bitmap, partial aggregates and
//!   per-worker [`QueryStats`]),
//! * the **single-threaded drivers** ([`filter_range`], [`group_by_avg`],
//!   [`sum_selected`]) iterate row groups and compose the kernels; the
//!   `leco-scan` crate composes the same kernels from a worker pool.

use crate::bitmap::Bitmap;
use crate::encoding::EncodedColumn;
use crate::file::TableFile;
use leco_obs::Stopwatch;
use std::collections::HashMap;

/// Per-query accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Bytes read from the data file.
    pub io_bytes: u64,
    /// Seconds spent reading from the data file.
    pub io_seconds: f64,
    /// Seconds spent decoding and computing.
    pub cpu_seconds: f64,
    /// Column chunks actually read from the data file.
    pub chunks_read: u64,
    /// Row groups skipped before any I/O because their zone map (or bitmap
    /// slice) proved no row could qualify.
    pub row_groups_pruned: u64,
    /// Rows whose filter outcome was resolved without reconstructing the
    /// value: inside a model-inverse definite/excluded band (LeCo), resolved
    /// from a frame header envelope (FOR, constant Delta frames), or covered
    /// by a sorted-column binary search.
    pub rows_skipped_by_model: u64,
    /// Rows reconstructed (or compared in the packed domain) only because
    /// they fall in a correction-slack boundary band or a partially
    /// overlapping frame — the residual work of the pushdown kernels.
    pub boundary_rows_decoded: u64,
    /// Rows that went through a full value reconstruction with no help from
    /// the model or frame headers (decode-then-filter, fused Delta scans).
    pub rows_decoded_full: u64,
}

impl QueryStats {
    /// Total elapsed seconds attributed to the query.
    pub fn total_seconds(&self) -> f64 {
        self.io_seconds + self.cpu_seconds
    }

    /// Charge one chunk read: `seconds` of I/O time for `bytes` stored
    /// bytes. The wall-clock lands in `io_seconds` unconditionally; the same
    /// duration is mirrored into the shared `columnar.chunk_io_ns` histogram
    /// so per-chunk latency percentiles exist without a second clock read.
    pub fn charge_io(&mut self, seconds: f64, bytes: u64) {
        self.io_seconds += seconds;
        self.io_bytes += bytes;
        self.chunks_read += 1;
        leco_obs::histogram!("columnar.chunk_io_ns").record_secs(seconds);
    }

    /// Charge `seconds` of decode/compute time, mirrored into the shared
    /// `columnar.chunk_cpu_ns` histogram (one sample per kernel invocation).
    pub fn charge_cpu(&mut self, seconds: f64) {
        self.cpu_seconds += seconds;
        leco_obs::histogram!("columnar.chunk_cpu_ns").record_secs(seconds);
    }

    /// Merge another stats record into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.io_bytes += other.io_bytes;
        self.io_seconds += other.io_seconds;
        self.cpu_seconds += other.cpu_seconds;
        self.chunks_read += other.chunks_read;
        self.row_groups_pruned += other.row_groups_pruned;
        self.rows_skipped_by_model += other.rows_skipped_by_model;
        self.boundary_rows_decoded += other.boundary_rows_decoded;
        self.rows_decoded_full += other.rows_decoded_full;
    }
}

/// Per-worker mutable scan state: everything a morsel kernel writes into.
///
/// A scan allocates one `ScanScratch` per worker thread and reuses it across
/// every morsel that worker processes, so steady-state decoding allocates
/// nothing.  The immutable counterpart — shared file metadata and the file
/// descriptor — lives in [`crate::file::ChunkReader`].
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Raw stored-chunk byte buffer for positioned reads.
    pub io_buf: Vec<u8>,
    /// Primary decode buffer (filter column / aggregated column).
    pub decode: Vec<u64>,
    /// Secondary decode buffer (group-by value column).
    pub decode2: Vec<u64>,
    /// Selection bitmap; morsel-local (`reset` per morsel) in parallel scans,
    /// table-global in the single-threaded drivers.
    pub sel: Bitmap,
    /// Partial `GROUP BY` aggregates: id → (sum, count).
    pub groups: HashMap<u64, (u128, u64)>,
    /// Partial sum aggregate.
    pub sum: u128,
    /// Rows that passed the filter so far.
    pub selected: u64,
    /// Per-worker time/IO accounting, merged into the query total at the end.
    pub stats: QueryStats,
}

impl ScanScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another worker's partial aggregates and stats into this one.
    /// Integer sums and counts merge exactly, which is what makes parallel
    /// results bit-identical to the single-threaded ones.
    pub fn merge(&mut self, other: ScanScratch) {
        for (id, (sum, count)) in other.groups {
            let entry = self.groups.entry(id).or_insert((0, 0));
            entry.0 += sum;
            entry.1 += count;
        }
        self.sum += other.sum;
        self.selected += other.selected;
        self.stats.merge(&other.stats);
    }
}

/// Turn merged `GROUP BY` partials into the driver result shape: `(id, avg)`
/// pairs sorted by id.  The division happens once, after all integer partials
/// are merged, so the result does not depend on how work was split.
pub fn finalize_group_avgs(groups: &HashMap<u64, (u128, u64)>) -> Vec<(u64, f64)> {
    let mut out: Vec<(u64, f64)> = groups
        .iter()
        .map(|(&id, &(sum, count))| (id, sum as f64 / count as f64))
        .collect();
    out.sort_unstable_by_key(|&(id, _)| id);
    out
}

/// Evaluate the range predicate over one encoded chunk, setting qualifying
/// positions (offset by `base`) in `sel`.
///
/// **Bound convention** (shared by every filter kernel in this module): both
/// bounds are *inclusive* — a row qualifies iff `lo <= value && value <= hi`.
/// `hi == u64::MAX` therefore selects everything from `lo` up, including
/// rows equal to `u64::MAX` itself, and an inverted predicate (`lo > hi`)
/// selects nothing.  Exclusive bounds are expressed by the caller as
/// `lo + 1` / `hi - 1`.
///
/// Stateless per-morsel kernel: `base` is the chunk's first row inside `sel`
/// (the row-group start for a table-global bitmap, 0 for a morsel-local one),
/// and `decode` is a reusable scratch buffer for the unsorted path.  Does not
/// touch `sel` outside `[base, base + chunk.len())`.  Row accounting: the
/// sorted path resolves every row by binary search without a bulk decode
/// (`rows_skipped_by_model`); the unsorted path reconstructs every row
/// (`rows_decoded_full`).
#[allow(clippy::too_many_arguments)]
pub fn filter_chunk(
    chunk: &EncodedColumn,
    lo: u64,
    hi: u64,
    sorted: bool,
    base: usize,
    sel: &mut Bitmap,
    decode: &mut Vec<u64>,
    stats: &mut QueryStats,
) {
    if sorted {
        stats.rows_skipped_by_model += chunk.len() as u64;
        if lo > hi {
            return;
        }
        let from = chunk.lower_bound_sorted(lo);
        // `hi` is inclusive: the first position with value > hi ends the run.
        // `hi + 1` would wrap at u64::MAX, where no value can exceed hi.
        let to = if hi == u64::MAX {
            chunk.len()
        } else {
            chunk.lower_bound_sorted(hi + 1)
        };
        sel.set_range(base + from, base + to);
    } else {
        stats.rows_decoded_full += chunk.len() as u64;
        decode.clear();
        chunk.decode_into(decode);
        for (local, &v) in decode.iter().enumerate() {
            if (lo..=hi).contains(&v) {
                sel.set(base + local);
            }
        }
    }
}

/// Compressed-execution variant of [`filter_chunk`] (same inclusive-bounds
/// convention): evaluate the predicate *inside* the encoded domain instead of
/// decode-then-filter.
///
/// Kernel per encoding:
///
/// * **LeCo** — model-inverse pushdown
///   ([`leco_core::CompressedColumn::filter_range_pushdown`]): two binary
///   searches over the monotone model per partition yield a definite band
///   (set wholesale) and at most two correction-slack boundary bands (the
///   only rows decoded),
/// * **FOR** — packed-domain comparison: the predicate is rebased by the
///   frame reference and evaluated on the packed words; fully
///   covered/disjoint frames resolve from their 9-byte headers,
/// * **Delta** — fused compare: ZigZag decode, prefix summation and range
///   test ride one bit-extraction loop; constant (zero-width) frames resolve
///   from headers,
/// * **Plain / Dict** — no compressed domain to exploit
///   ([`EncodedColumn::supports_pushdown`] is false): falls back to the
///   unsorted [`filter_chunk`] path.
///
/// Row accounting per chunk is exhaustive:
/// `rows_skipped_by_model + boundary_rows_decoded + rows_decoded_full`
/// grows by exactly `chunk.len()`.
pub fn filter_chunk_pushdown(
    chunk: &EncodedColumn,
    lo: u64,
    hi: u64,
    base: usize,
    sel: &mut Bitmap,
    decode: &mut Vec<u64>,
    stats: &mut QueryStats,
) {
    match chunk {
        EncodedColumn::Leco(c) => {
            let counts =
                c.filter_range_pushdown(lo, hi, decode, |a, b| sel.set_range(base + a, base + b));
            stats.rows_skipped_by_model += counts.rows_skipped_by_model;
            stats.boundary_rows_decoded += counts.boundary_rows_decoded;
            stats.rows_decoded_full += counts.rows_decoded_full;
        }
        EncodedColumn::For(c) => {
            let (skipped, compared) =
                c.filter_range_pushdown(lo, hi, |row, mask, n| sel.or_mask_at(base + row, mask, n));
            stats.rows_skipped_by_model += skipped;
            stats.boundary_rows_decoded += compared;
        }
        EncodedColumn::Delta(c) => {
            let (skipped, examined) =
                c.filter_range_pushdown(lo, hi, |row, mask, n| sel.or_mask_at(base + row, mask, n));
            stats.rows_skipped_by_model += skipped;
            // The fused kernel reconstructs every examined value (prefix sums
            // leave no shortcut), so these are full decodes, not boundary work.
            stats.rows_decoded_full += examined;
        }
        other => filter_chunk(other, lo, hi, false, base, sel, decode, stats),
    }
}

/// Evaluate the pushed-down range predicate `lo <= value <= hi` on column
/// `col`, producing a selection bitmap over the whole table.
///
/// Row groups whose zone map cannot contain a match are skipped without any
/// I/O.  If `sorted` is set, qualifying positions inside a row group are
/// found with two model-guided binary searches (LeCo) instead of a scan —
/// the computation-pruning trick of §5.1.1.
pub fn filter_range(
    file: &TableFile,
    col: usize,
    lo: u64,
    hi: u64,
    sorted: bool,
    stats: &mut QueryStats,
) -> std::io::Result<Bitmap> {
    let mut bitmap = Bitmap::new(file.num_rows());
    let reader = file.chunk_reader()?;
    // One decode buffer reused across row groups: the chunks feed it through
    // the word-parallel `decode_into` bulk path, so an unsorted scan costs a
    // single allocation regardless of the number of row groups.
    let mut scratch: Vec<u64> = Vec::new();
    for rg in 0..file.num_row_groups() {
        let (zmin, zmax) = file.zone_map(rg, col);
        if zmax < lo || zmin > hi {
            stats.row_groups_pruned += 1;
            continue; // zone-map skip: no I/O, no CPU
        }
        let chunk = reader.read_chunk(rg, col, stats)?;
        let (row_start, _) = file.row_group_range(rg);
        let cpu = Stopwatch::start();
        filter_chunk(
            chunk,
            lo,
            hi,
            sorted,
            row_start,
            &mut bitmap,
            &mut scratch,
            stats,
        );
        stats.charge_cpu(cpu.elapsed_secs());
    }
    Ok(bitmap)
}

/// Compressed-execution driver: like the unsorted [`filter_range`] but each
/// surviving row group rides [`filter_chunk_pushdown`], so the predicate is
/// evaluated inside the encoded domain and only boundary rows are decoded.
///
/// Zone-map pruning is identical to [`filter_range`]; the new row counters
/// (`rows_skipped_by_model` / `boundary_rows_decoded` / `rows_decoded_full`)
/// cover exactly the rows of the chunks that reached the kernel — pruned row
/// groups are accounted by `row_groups_pruned`, not by the row counters.
pub fn filter_range_pushdown(
    file: &TableFile,
    col: usize,
    lo: u64,
    hi: u64,
    stats: &mut QueryStats,
) -> std::io::Result<Bitmap> {
    let mut bitmap = Bitmap::new(file.num_rows());
    let reader = file.chunk_reader()?;
    let mut scratch: Vec<u64> = Vec::new();
    for rg in 0..file.num_row_groups() {
        let (zmin, zmax) = file.zone_map(rg, col);
        if zmax < lo || zmin > hi {
            stats.row_groups_pruned += 1;
            continue;
        }
        let chunk = reader.read_chunk(rg, col, stats)?;
        let (row_start, _) = file.row_group_range(rg);
        let cpu = Stopwatch::start();
        filter_chunk_pushdown(chunk, lo, hi, row_start, &mut bitmap, &mut scratch, stats);
        stats.charge_cpu(cpu.elapsed_secs());
    }
    Ok(bitmap)
}

/// A selection denser than one row in `DENSE_DIVISOR` makes the sequential
/// word-parallel decode of the whole row group cheaper than per-position
/// random access (bulk decode amortises to a few cycles per row, while a
/// point access costs a model inference plus a positioned bit extract).
const DENSE_DIVISOR: usize = 16;

/// `SELECT AVG(val) ... GROUP BY id` over the positions selected by `bitmap`
/// (the §5.1.1 query shape).  Returns `(id, average)` pairs.
///
/// Sparse row groups random-access only the qualifying positions (late
/// materialisation); dense row groups switch to the word-parallel bulk
/// decode and index the decoded buffer instead.
pub fn group_by_avg(
    file: &TableFile,
    id_col: usize,
    val_col: usize,
    bitmap: &Bitmap,
    stats: &mut QueryStats,
) -> std::io::Result<Vec<(u64, f64)>> {
    let reader = file.chunk_reader()?;
    let mut scratch = ScanScratch::new();
    for rg in 0..file.num_row_groups() {
        let (row_start, row_end) = file.row_group_range(rg);
        if bitmap.count_ones_in(row_start, row_end) == 0 {
            stats.row_groups_pruned += 1;
            continue; // row-group skip
        }
        let ids = reader.read_chunk(rg, id_col, stats)?;
        let vals = reader.read_chunk(rg, val_col, stats)?;
        let cpu = Stopwatch::start();
        group_by_avg_chunk(
            ids,
            vals,
            bitmap,
            row_start,
            &mut scratch.decode,
            &mut scratch.decode2,
            &mut scratch.groups,
        );
        stats.charge_cpu(cpu.elapsed_secs());
    }
    Ok(finalize_group_avgs(&scratch.groups))
}

/// `GROUP BY`-average accumulation over one row group's id/value chunks.
///
/// Stateless per-morsel kernel: consults the selection positions
/// `[base, base + ids.len())` of `sel`, accumulating integer `(sum, count)`
/// partials into `groups`.  Sparse selections random-access only the
/// qualifying positions (late materialisation); dense ones bulk-decode both
/// chunks into the scratch buffers first.
pub fn group_by_avg_chunk(
    ids: &EncodedColumn,
    vals: &EncodedColumn,
    sel: &Bitmap,
    base: usize,
    id_buf: &mut Vec<u64>,
    val_buf: &mut Vec<u64>,
    groups: &mut HashMap<u64, (u128, u64)>,
) {
    let rows = ids.len();
    let selected = sel.count_ones_in(base, base + rows);
    if selected == 0 {
        return;
    }
    let dense = selected * DENSE_DIVISOR >= rows;
    if dense {
        id_buf.clear();
        val_buf.clear();
        ids.decode_into(id_buf);
        vals.decode_into(val_buf);
    }
    for pos in sel.iter_ones_in(base, base + rows) {
        let local = pos - base;
        let (id, val) = if dense {
            (id_buf[local], val_buf[local])
        } else {
            (ids.get(local), vals.get(local))
        };
        let entry = groups.entry(id).or_insert((0, 0));
        entry.0 += val as u128;
        entry.1 += 1;
    }
}

/// Bitmap aggregation (§5.1.2): sum of the selected positions of one column.
/// Row groups whose bitmap slice is all zero are skipped entirely; dense row
/// groups are bulk-decoded with the word-parallel path before summing.
pub fn sum_selected(
    file: &TableFile,
    col: usize,
    bitmap: &Bitmap,
    stats: &mut QueryStats,
) -> std::io::Result<u128> {
    let reader = file.chunk_reader()?;
    let mut total: u128 = 0;
    let mut buf: Vec<u64> = Vec::new();
    for rg in 0..file.num_row_groups() {
        let (row_start, row_end) = file.row_group_range(rg);
        if bitmap.count_ones_in(row_start, row_end) == 0 {
            stats.row_groups_pruned += 1;
            continue;
        }
        let chunk = reader.read_chunk(rg, col, stats)?;
        let cpu = Stopwatch::start();
        total += sum_selected_chunk(chunk, bitmap, row_start, &mut buf);
        stats.charge_cpu(cpu.elapsed_secs());
    }
    Ok(total)
}

/// Sum-aggregation over one row group's chunk: adds up the values at the
/// selection positions `[base, base + chunk.len())` of `sel`.
///
/// Stateless per-morsel kernel with the same dense/sparse split as
/// [`group_by_avg_chunk`]; `buf` is the reusable bulk-decode scratch.
pub fn sum_selected_chunk(
    chunk: &EncodedColumn,
    sel: &Bitmap,
    base: usize,
    buf: &mut Vec<u64>,
) -> u128 {
    let rows = chunk.len();
    let selected = sel.count_ones_in(base, base + rows);
    if selected == 0 {
        return 0;
    }
    let dense = selected * DENSE_DIVISOR >= rows;
    if dense {
        buf.clear();
        chunk.decode_into(buf);
    }
    let mut total: u128 = 0;
    for pos in sel.iter_ones_in(base, base + rows) {
        let local = pos - base;
        total += if dense {
            buf[local] as u128
        } else {
            chunk.get(local) as u128
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoding;
    use crate::file::{BlockCompression, TableFileOptions};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leco-exec-test-{}-{}", std::process::id(), name));
        p
    }

    /// Reference implementation operating on the raw vectors.
    fn reference_query(ts: &[u64], id: &[u64], val: &[u64], lo: u64, hi: u64) -> Vec<(u64, f64)> {
        let mut sums: HashMap<u64, (u128, u64)> = HashMap::new();
        for i in 0..ts.len() {
            if (lo..=hi).contains(&ts[i]) {
                let e = sums.entry(id[i]).or_insert((0, 0));
                e.0 += val[i] as u128;
                e.1 += 1;
            }
        }
        let mut out: Vec<(u64, f64)> = sums
            .into_iter()
            .map(|(k, (s, c))| (k, s as f64 / c as f64))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn build(
        n: usize,
        encoding: Encoding,
        name: &str,
    ) -> (TableFile, Vec<u64>, Vec<u64>, Vec<u64>, PathBuf) {
        let ts: Vec<u64> = (0..n as u64).map(|i| 1_000 + i * 2).collect();
        let id: Vec<u64> = (0..n as u64).map(|i| i % 50 + 1).collect();
        let val: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 10_000).collect();
        let path = tmp(name);
        let file = TableFile::write(
            &path,
            &["ts", "id", "val"],
            &[ts.clone(), id.clone(), val.clone()],
            TableFileOptions {
                encoding,
                row_group_size: 8_000,
                block_compression: BlockCompression::None,
            },
        )
        .unwrap();
        (file, ts, id, val, path)
    }

    #[test]
    fn filter_groupby_matches_reference_for_all_encodings() {
        for (k, enc) in [
            Encoding::Default,
            Encoding::Delta,
            Encoding::For,
            Encoding::Leco,
        ]
        .iter()
        .enumerate()
        {
            let (file, ts, id, val, path) = build(30_000, *enc, &format!("fga{k}"));
            let (lo, hi) = (5_000u64, 9_000u64);
            let mut stats = QueryStats::default();
            let bitmap = filter_range(&file, 0, lo, hi, true, &mut stats).unwrap();
            let got = group_by_avg(&file, 1, 2, &bitmap, &mut stats).unwrap();
            let expected = reference_query(&ts, &id, &val, lo, hi);
            assert_eq!(got.len(), expected.len(), "{enc:?}");
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.0, e.0, "{enc:?}");
                assert!((g.1 - e.1).abs() < 1e-9, "{enc:?}");
            }
            assert!(stats.io_bytes > 0);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn unsorted_filter_matches_sorted_filter() {
        let (file, ts, _, _, path) = build(20_000, Encoding::Leco, "unsorted");
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let a = filter_range(&file, 0, 2_000, 30_000, true, &mut s1).unwrap();
        let b = filter_range(&file, 0, 2_000, 30_000, false, &mut s2).unwrap();
        assert_eq!(a, b);
        let expected = ts
            .iter()
            .filter(|&&t| (2_000..=30_000).contains(&t))
            .count();
        assert_eq!(a.count_ones(), expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zone_map_skipping_reduces_io() {
        let (file, _, _, _, path) = build(40_000, Encoding::Leco, "skip");
        // Selective predicate hits only the first row group.
        let mut narrow = QueryStats::default();
        filter_range(&file, 0, 1_000, 1_200, true, &mut narrow).unwrap();
        let mut wide = QueryStats::default();
        filter_range(&file, 0, 0, u64::MAX, true, &mut wide).unwrap();
        assert!(
            narrow.io_bytes < wide.io_bytes,
            "narrow {} wide {}",
            narrow.io_bytes,
            wide.io_bytes
        );
        // The chunk counters prove the pruning: one group read, four pruned.
        assert_eq!(narrow.chunks_read, 1);
        assert_eq!(narrow.row_groups_pruned as usize, file.num_row_groups() - 1);
        assert_eq!(wide.chunks_read as usize, file.num_row_groups());
        assert_eq!(wide.row_groups_pruned, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_kernels_match_drivers() {
        // Drive the stateless per-chunk kernels by hand (morsel-local
        // bitmaps, base 0) and check they reproduce the drivers' answers.
        let (file, ts, id, val, path) = build(30_000, Encoding::Leco, "kernels");
        let (lo, hi) = (4_000u64, 40_000u64);
        let mut stats = QueryStats::default();
        let reader = file.chunk_reader().unwrap();
        let mut scratch = ScanScratch::new();
        for rg in 0..file.num_row_groups() {
            let (row_start, row_end) = file.row_group_range(rg);
            let (zmin, zmax) = file.zone_map(rg, 0);
            if zmax < lo || zmin > hi {
                continue;
            }
            let ts_chunk = reader.read_chunk(rg, 0, &mut scratch.stats).unwrap();
            scratch.sel.reset(row_end - row_start);
            filter_chunk(
                ts_chunk,
                lo,
                hi,
                true,
                0,
                &mut scratch.sel,
                &mut scratch.decode,
                &mut scratch.stats,
            );
            scratch.selected += scratch.sel.count_ones() as u64;
            let ids = reader.read_chunk(rg, 1, &mut scratch.stats).unwrap();
            let vals = reader.read_chunk(rg, 2, &mut scratch.stats).unwrap();
            group_by_avg_chunk(
                ids,
                vals,
                &scratch.sel,
                0,
                &mut scratch.decode,
                &mut scratch.decode2,
                &mut scratch.groups,
            );
            scratch.sum += sum_selected_chunk(vals, &scratch.sel, 0, &mut scratch.decode);
        }
        let got = finalize_group_avgs(&scratch.groups);
        let expected = reference_query(&ts, &id, &val, lo, hi);
        assert_eq!(got, expected);
        let expected_sum: u128 = (0..ts.len())
            .filter(|&i| (lo..=hi).contains(&ts[i]))
            .map(|i| val[i] as u128)
            .sum();
        assert_eq!(scratch.sum, expected_sum);
        let expected_selected = ts.iter().filter(|&&t| (lo..=hi).contains(&t)).count() as u64;
        assert_eq!(scratch.selected, expected_selected);
        stats.merge(&scratch.stats);
        assert!(stats.chunks_read > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scratch_merge_combines_partials_exactly() {
        let mut a = ScanScratch::new();
        a.groups.insert(1, (10, 2));
        a.groups.insert(2, (5, 1));
        a.sum = 100;
        a.selected = 3;
        let mut b = ScanScratch::new();
        b.groups.insert(2, (7, 3));
        b.groups.insert(3, (1, 1));
        b.sum = 11;
        b.selected = 4;
        b.stats.io_bytes = 9;
        a.merge(b);
        assert_eq!(a.groups[&1], (10, 2));
        assert_eq!(a.groups[&2], (12, 4));
        assert_eq!(a.groups[&3], (1, 1));
        assert_eq!(a.sum, 111);
        assert_eq!(a.selected, 7);
        assert_eq!(a.stats.io_bytes, 9);
        let avgs = finalize_group_avgs(&a.groups);
        assert_eq!(avgs[0], (1, 5.0));
        assert_eq!(avgs[1], (2, 3.0));
    }

    #[test]
    fn bitmap_sum_matches_reference_and_skips_groups() {
        let (file, _, _, val, path) = build(30_000, Encoding::Leco, "bitmapsum");
        let mut bitmap = Bitmap::new(file.num_rows());
        // One dense cluster confined to the second row group.
        bitmap.set_range(9_000, 9_500);
        let mut stats = QueryStats::default();
        let got = sum_selected(&file, 2, &bitmap, &mut stats).unwrap();
        let expected: u128 = (9_000..9_500).map(|i| val[i] as u128).sum();
        assert_eq!(got, expected);
        // Only the touched row group should be read (8k rows per group → group 1).
        let full_scan_bytes: u64 = (0..file.num_row_groups())
            .map(|rg| {
                let mut s = QueryStats::default();
                file.read_chunk(rg, 2, &mut s).unwrap();
                s.io_bytes
            })
            .sum();
        assert!(stats.io_bytes < full_scan_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dense_and_sparse_aggregation_paths_agree() {
        let (file, _, id, val, path) = build(30_000, Encoding::Leco, "densesparse");
        // Sparse: well under 1/DENSE_DIVISOR of a row group.
        let mut sparse = Bitmap::new(file.num_rows());
        for p in (0..30_000).step_by(97) {
            sparse.set(p);
        }
        // Dense: everything.
        let dense = Bitmap::all_set(file.num_rows());
        for bm in [&sparse, &dense] {
            let mut stats = QueryStats::default();
            let got = sum_selected(&file, 2, bm, &mut stats).unwrap();
            let expected: u128 = bm.iter_ones().map(|p| val[p] as u128).sum();
            assert_eq!(got, expected);
            let groups = group_by_avg(&file, 1, 2, bm, &mut stats).unwrap();
            let mut sums: HashMap<u64, (u128, u64)> = HashMap::new();
            for p in bm.iter_ones() {
                let e = sums.entry(id[p]).or_insert((0, 0));
                e.0 += val[p] as u128;
                e.1 += 1;
            }
            assert_eq!(groups.len(), sums.len());
            for (g, avg) in &groups {
                let (s, c) = sums[g];
                assert!((avg - s as f64 / c as f64).abs() < 1e-9);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_merge_adds_components() {
        let mut a = QueryStats {
            io_bytes: 10,
            io_seconds: 1.0,
            cpu_seconds: 2.0,
            chunks_read: 3,
            row_groups_pruned: 1,
            rows_skipped_by_model: 100,
            boundary_rows_decoded: 10,
            rows_decoded_full: 7,
        };
        let b = QueryStats {
            io_bytes: 5,
            io_seconds: 0.5,
            cpu_seconds: 0.25,
            chunks_read: 2,
            row_groups_pruned: 4,
            rows_skipped_by_model: 50,
            boundary_rows_decoded: 4,
            rows_decoded_full: 3,
        };
        a.merge(&b);
        assert_eq!(a.io_bytes, 15);
        assert_eq!(a.chunks_read, 5);
        assert_eq!(a.row_groups_pruned, 5);
        assert_eq!(a.rows_skipped_by_model, 150);
        assert_eq!(a.boundary_rows_decoded, 14);
        assert_eq!(a.rows_decoded_full, 10);
        assert!((a.total_seconds() - 3.75).abs() < 1e-12);
    }

    /// Reference selection on raw values, the oracle for the kernel tests.
    fn reference_bitmap(values: &[u64], lo: u64, hi: u64) -> Bitmap {
        let mut b = Bitmap::new(values.len());
        for (i, v) in values.iter().enumerate() {
            if lo <= hi && (lo..=hi).contains(v) {
                b.set(i);
            }
        }
        b
    }

    #[test]
    fn filter_chunk_bounds_are_inclusive_at_exact_edges() {
        // ±1-off-boundary sweep: for a predicate [lo, hi] and values exactly
        // at lo-1 / lo / hi / hi+1, both paths must keep the bounds inclusive.
        let values: Vec<u64> = (0..2_000u64).map(|i| 10 + i * 3).collect(); // sorted
        for enc in [Encoding::Plain, Encoding::For, Encoding::Leco] {
            let chunk = EncodedColumn::encode(&values, enc);
            for &edge in &[values[0], values[700], values[1_999]] {
                for (lo, hi) in [
                    (edge, edge),
                    (edge.saturating_sub(1), edge),
                    (edge, edge.saturating_add(1)),
                    (edge.saturating_sub(1), edge.saturating_add(1)),
                    (edge.saturating_add(1), edge.saturating_sub(1)), // inverted
                ] {
                    let want = reference_bitmap(&values, lo, hi);
                    for sorted in [true, false] {
                        let mut sel = Bitmap::new(values.len());
                        let mut stats = QueryStats::default();
                        let mut buf = Vec::new();
                        filter_chunk(&chunk, lo, hi, sorted, 0, &mut sel, &mut buf, &mut stats);
                        assert_eq!(sel, want, "{enc:?} sorted={sorted} [{lo},{hi}]");
                        let accounted = stats.rows_skipped_by_model + stats.rows_decoded_full;
                        assert_eq!(accounted, values.len() as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn sorted_filter_includes_u64_max_upper_bound() {
        // Regression: the sorted path used `lower_bound_sorted(hi + 1)` with a
        // saturating add, so `hi == u64::MAX` silently excluded rows equal to
        // u64::MAX while the unsorted path included them.
        let values: Vec<u64> = vec![5, 9, 100, u64::MAX - 1, u64::MAX, u64::MAX];
        let chunk = EncodedColumn::encode(&values, Encoding::Plain);
        for lo in [0u64, 100, u64::MAX] {
            let want = reference_bitmap(&values, lo, u64::MAX);
            for sorted in [true, false] {
                let mut sel = Bitmap::new(values.len());
                let mut stats = QueryStats::default();
                let mut buf = Vec::new();
                filter_chunk(
                    &chunk,
                    lo,
                    u64::MAX,
                    sorted,
                    0,
                    &mut sel,
                    &mut buf,
                    &mut stats,
                );
                assert_eq!(sel, want, "sorted={sorted} lo={lo}");
            }
        }
    }

    #[test]
    fn pushdown_kernel_matches_filter_chunk_for_all_encodings() {
        // Unsorted, correlated-but-noisy data: exercises partial frames and
        // boundary bands.  Plain/Dict take the documented fallback.
        let values: Vec<u64> = (0..25_000u64).map(|i| (i * 37) % 10_000).collect();
        for enc in [
            Encoding::Default,
            Encoding::Plain,
            Encoding::Delta,
            Encoding::For,
            Encoding::Leco,
        ] {
            let chunk = EncodedColumn::encode(&values, enc);
            for (lo, hi) in [
                (0u64, u64::MAX),
                (0, 0),
                (2_500, 2_500),
                (2_000, 7_999),
                (9_999, 9_999),
                (10_000, u64::MAX), // nothing qualifies
                (7, 3),             // inverted
            ] {
                let want = reference_bitmap(&values, lo, hi);
                let mut sel = Bitmap::new(values.len());
                let mut stats = QueryStats::default();
                let mut buf = Vec::new();
                filter_chunk_pushdown(&chunk, lo, hi, 0, &mut sel, &mut buf, &mut stats);
                assert_eq!(sel, want, "{enc:?} [{lo},{hi}]");
                let accounted = stats.rows_skipped_by_model
                    + stats.boundary_rows_decoded
                    + stats.rows_decoded_full;
                assert_eq!(accounted, values.len() as u64, "{enc:?} [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn pushdown_driver_matches_decode_then_filter() {
        for (k, enc) in [
            Encoding::Default,
            Encoding::Delta,
            Encoding::For,
            Encoding::Leco,
        ]
        .iter()
        .enumerate()
        {
            let (file, _, _, val, path) = build(30_000, *enc, &format!("pdrv{k}"));
            for (lo, hi) in [(0u64, u64::MAX), (2_000, 2_100), (9_999, 9_999), (8, 2)] {
                let mut s_ref = QueryStats::default();
                let reference = filter_range(&file, 2, lo, hi, false, &mut s_ref).unwrap();
                let mut s_pd = QueryStats::default();
                let got = filter_range_pushdown(&file, 2, lo, hi, &mut s_pd).unwrap();
                assert_eq!(got, reference, "{enc:?} [{lo},{hi}]");
                // Row accounting covers exactly the chunks that were read.
                let rows_read: u64 = (0..file.num_row_groups())
                    .map(|rg| {
                        let (zmin, zmax) = file.zone_map(rg, 2);
                        if zmax < lo || zmin > hi {
                            0
                        } else {
                            let (a, b) = file.row_group_range(rg);
                            (b - a) as u64
                        }
                    })
                    .sum();
                let accounted = s_pd.rows_skipped_by_model
                    + s_pd.boundary_rows_decoded
                    + s_pd.rows_decoded_full;
                assert_eq!(accounted, rows_read, "{enc:?} [{lo},{hi}]");
            }
            // Reference validation against the raw column.
            let mut stats = QueryStats::default();
            let got = filter_range_pushdown(&file, 2, 2_000, 7_999, &mut stats).unwrap();
            assert_eq!(got, reference_bitmap(&val, 2_000, 7_999));
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn pushdown_skips_decoding_on_selective_sorted_column() {
        // The ts column is cleanly linear, so the model inverse resolves all
        // but a slack band: on a selective predicate nearly every row must be
        // skipped without decoding.
        let (file, ts, _, _, path) = build(40_000, Encoding::Leco, "pdsel");
        let (lo, hi) = (1_000u64, 1_080u64); // ~40 of 40_000 rows
        let mut s_pd = QueryStats::default();
        let got = filter_range_pushdown(&file, 0, lo, hi, &mut s_pd).unwrap();
        assert_eq!(got, reference_bitmap(&ts, lo, hi));
        assert_eq!(s_pd.rows_decoded_full, 0, "model inverse should cover Leco");
        let touched = s_pd.boundary_rows_decoded;
        let skipped = s_pd.rows_skipped_by_model;
        assert!(
            touched < 200 && skipped > 7_000,
            "boundary {touched} skipped {skipped}"
        );
        std::fs::remove_file(&path).ok();
    }
}
