//! Compute kernels and query drivers for the §5.1 experiments.
//!
//! The engine uses late materialisation: the filter produces a selection
//! [`Bitmap`], and the group-by / aggregation kernels only random-access the
//! qualifying positions of the (still encoded) columns.  Every driver
//! accumulates a [`QueryStats`] separating I/O time (reading chunk bytes from
//! the data file) from CPU time (decoding + compute), which is the breakdown
//! plotted in Figures 18, 19 and 21.

use crate::bitmap::Bitmap;
use crate::file::TableFile;
use std::collections::HashMap;
use std::time::Instant;

/// Per-query accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Bytes read from the data file.
    pub io_bytes: u64,
    /// Seconds spent reading from the data file.
    pub io_seconds: f64,
    /// Seconds spent decoding and computing.
    pub cpu_seconds: f64,
}

impl QueryStats {
    /// Total elapsed seconds attributed to the query.
    pub fn total_seconds(&self) -> f64 {
        self.io_seconds + self.cpu_seconds
    }

    /// Merge another stats record into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.io_bytes += other.io_bytes;
        self.io_seconds += other.io_seconds;
        self.cpu_seconds += other.cpu_seconds;
    }
}

/// Evaluate the pushed-down range predicate `lo <= value <= hi` on column
/// `col`, producing a selection bitmap over the whole table.
///
/// Row groups whose zone map cannot contain a match are skipped without any
/// I/O.  If `sorted` is set, qualifying positions inside a row group are
/// found with two model-guided binary searches (LeCo) instead of a scan —
/// the computation-pruning trick of §5.1.1.
pub fn filter_range(
    file: &TableFile,
    col: usize,
    lo: u64,
    hi: u64,
    sorted: bool,
    stats: &mut QueryStats,
) -> std::io::Result<Bitmap> {
    let mut bitmap = Bitmap::new(file.num_rows());
    // One decode buffer reused across row groups: the chunks feed it through
    // the word-parallel `decode_into` bulk path, so an unsorted scan costs a
    // single allocation regardless of the number of row groups.
    let mut scratch: Vec<u64> = Vec::new();
    for rg in 0..file.num_row_groups() {
        let (zmin, zmax) = file.zone_map(rg, col);
        if zmax < lo || zmin > hi {
            continue; // zone-map skip: no I/O, no CPU
        }
        let chunk = file.read_chunk(rg, col, stats)?;
        let (row_start, _) = file.row_group_range(rg);
        let cpu = Instant::now();
        if sorted {
            let from = chunk.lower_bound_sorted(lo);
            let to = chunk.lower_bound_sorted(hi.saturating_add(1));
            bitmap.set_range(row_start + from, row_start + to);
        } else {
            scratch.clear();
            chunk.decode_into(&mut scratch);
            for (local, &v) in scratch.iter().enumerate() {
                if (lo..=hi).contains(&v) {
                    bitmap.set(row_start + local);
                }
            }
        }
        stats.cpu_seconds += cpu.elapsed().as_secs_f64();
    }
    Ok(bitmap)
}

/// A selection denser than one row in `DENSE_DIVISOR` makes the sequential
/// word-parallel decode of the whole row group cheaper than per-position
/// random access (bulk decode amortises to a few cycles per row, while a
/// point access costs a model inference plus a positioned bit extract).
const DENSE_DIVISOR: usize = 16;

/// `SELECT AVG(val) ... GROUP BY id` over the positions selected by `bitmap`
/// (the §5.1.1 query shape).  Returns `(id, average)` pairs.
///
/// Sparse row groups random-access only the qualifying positions (late
/// materialisation); dense row groups switch to the word-parallel bulk
/// decode and index the decoded buffer instead.
pub fn group_by_avg(
    file: &TableFile,
    id_col: usize,
    val_col: usize,
    bitmap: &Bitmap,
    stats: &mut QueryStats,
) -> std::io::Result<Vec<(u64, f64)>> {
    let mut sums: HashMap<u64, (u128, u64)> = HashMap::new();
    let mut id_buf: Vec<u64> = Vec::new();
    let mut val_buf: Vec<u64> = Vec::new();
    for rg in 0..file.num_row_groups() {
        let (row_start, row_end) = file.row_group_range(rg);
        let selected = bitmap.count_ones_in(row_start, row_end);
        if selected == 0 {
            continue; // row-group skip
        }
        let ids = file.read_chunk(rg, id_col, stats)?;
        let vals = file.read_chunk(rg, val_col, stats)?;
        let cpu = Instant::now();
        let dense = selected * DENSE_DIVISOR >= row_end - row_start;
        if dense {
            id_buf.clear();
            val_buf.clear();
            ids.decode_into(&mut id_buf);
            vals.decode_into(&mut val_buf);
        }
        for pos in bitmap.iter_ones_in(row_start, row_end) {
            let local = pos - row_start;
            let (id, val) = if dense {
                (id_buf[local], val_buf[local])
            } else {
                (ids.get(local), vals.get(local))
            };
            let entry = sums.entry(id).or_insert((0, 0));
            entry.0 += val as u128;
            entry.1 += 1;
        }
        stats.cpu_seconds += cpu.elapsed().as_secs_f64();
    }
    let mut out: Vec<(u64, f64)> = sums
        .into_iter()
        .map(|(id, (sum, count))| (id, sum as f64 / count as f64))
        .collect();
    out.sort_unstable_by_key(|&(id, _)| id);
    Ok(out)
}

/// Bitmap aggregation (§5.1.2): sum of the selected positions of one column.
/// Row groups whose bitmap slice is all zero are skipped entirely; dense row
/// groups are bulk-decoded with the word-parallel path before summing.
pub fn sum_selected(
    file: &TableFile,
    col: usize,
    bitmap: &Bitmap,
    stats: &mut QueryStats,
) -> std::io::Result<u128> {
    let mut total: u128 = 0;
    let mut buf: Vec<u64> = Vec::new();
    for rg in 0..file.num_row_groups() {
        let (row_start, row_end) = file.row_group_range(rg);
        let selected = bitmap.count_ones_in(row_start, row_end);
        if selected == 0 {
            continue;
        }
        let chunk = file.read_chunk(rg, col, stats)?;
        let cpu = Instant::now();
        let dense = selected * DENSE_DIVISOR >= row_end - row_start;
        if dense {
            buf.clear();
            chunk.decode_into(&mut buf);
        }
        for pos in bitmap.iter_ones_in(row_start, row_end) {
            let local = pos - row_start;
            total += if dense {
                buf[local] as u128
            } else {
                chunk.get(local) as u128
            };
        }
        stats.cpu_seconds += cpu.elapsed().as_secs_f64();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoding;
    use crate::file::{BlockCompression, TableFileOptions};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leco-exec-test-{}-{}", std::process::id(), name));
        p
    }

    /// Reference implementation operating on the raw vectors.
    fn reference_query(ts: &[u64], id: &[u64], val: &[u64], lo: u64, hi: u64) -> Vec<(u64, f64)> {
        let mut sums: HashMap<u64, (u128, u64)> = HashMap::new();
        for i in 0..ts.len() {
            if (lo..=hi).contains(&ts[i]) {
                let e = sums.entry(id[i]).or_insert((0, 0));
                e.0 += val[i] as u128;
                e.1 += 1;
            }
        }
        let mut out: Vec<(u64, f64)> = sums
            .into_iter()
            .map(|(k, (s, c))| (k, s as f64 / c as f64))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn build(
        n: usize,
        encoding: Encoding,
        name: &str,
    ) -> (TableFile, Vec<u64>, Vec<u64>, Vec<u64>, PathBuf) {
        let ts: Vec<u64> = (0..n as u64).map(|i| 1_000 + i * 2).collect();
        let id: Vec<u64> = (0..n as u64).map(|i| i % 50 + 1).collect();
        let val: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 10_000).collect();
        let path = tmp(name);
        let file = TableFile::write(
            &path,
            &["ts", "id", "val"],
            &[ts.clone(), id.clone(), val.clone()],
            TableFileOptions {
                encoding,
                row_group_size: 8_000,
                block_compression: BlockCompression::None,
            },
        )
        .unwrap();
        (file, ts, id, val, path)
    }

    #[test]
    fn filter_groupby_matches_reference_for_all_encodings() {
        for (k, enc) in [
            Encoding::Default,
            Encoding::Delta,
            Encoding::For,
            Encoding::Leco,
        ]
        .iter()
        .enumerate()
        {
            let (file, ts, id, val, path) = build(30_000, *enc, &format!("fga{k}"));
            let (lo, hi) = (5_000u64, 9_000u64);
            let mut stats = QueryStats::default();
            let bitmap = filter_range(&file, 0, lo, hi, true, &mut stats).unwrap();
            let got = group_by_avg(&file, 1, 2, &bitmap, &mut stats).unwrap();
            let expected = reference_query(&ts, &id, &val, lo, hi);
            assert_eq!(got.len(), expected.len(), "{enc:?}");
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.0, e.0, "{enc:?}");
                assert!((g.1 - e.1).abs() < 1e-9, "{enc:?}");
            }
            assert!(stats.io_bytes > 0);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn unsorted_filter_matches_sorted_filter() {
        let (file, ts, _, _, path) = build(20_000, Encoding::Leco, "unsorted");
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let a = filter_range(&file, 0, 2_000, 30_000, true, &mut s1).unwrap();
        let b = filter_range(&file, 0, 2_000, 30_000, false, &mut s2).unwrap();
        assert_eq!(a, b);
        let expected = ts
            .iter()
            .filter(|&&t| (2_000..=30_000).contains(&t))
            .count();
        assert_eq!(a.count_ones(), expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zone_map_skipping_reduces_io() {
        let (file, _, _, _, path) = build(40_000, Encoding::Leco, "skip");
        // Selective predicate hits only the first row group.
        let mut narrow = QueryStats::default();
        filter_range(&file, 0, 1_000, 1_200, true, &mut narrow).unwrap();
        let mut wide = QueryStats::default();
        filter_range(&file, 0, 0, u64::MAX, true, &mut wide).unwrap();
        assert!(
            narrow.io_bytes < wide.io_bytes,
            "narrow {} wide {}",
            narrow.io_bytes,
            wide.io_bytes
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitmap_sum_matches_reference_and_skips_groups() {
        let (file, _, _, val, path) = build(30_000, Encoding::Leco, "bitmapsum");
        let mut bitmap = Bitmap::new(file.num_rows());
        // One dense cluster confined to the second row group.
        bitmap.set_range(9_000, 9_500);
        let mut stats = QueryStats::default();
        let got = sum_selected(&file, 2, &bitmap, &mut stats).unwrap();
        let expected: u128 = (9_000..9_500).map(|i| val[i] as u128).sum();
        assert_eq!(got, expected);
        // Only the touched row group should be read (8k rows per group → group 1).
        let full_scan_bytes: u64 = (0..file.num_row_groups())
            .map(|rg| {
                let mut s = QueryStats::default();
                file.read_chunk(rg, 2, &mut s).unwrap();
                s.io_bytes
            })
            .sum();
        assert!(stats.io_bytes < full_scan_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dense_and_sparse_aggregation_paths_agree() {
        let (file, _, id, val, path) = build(30_000, Encoding::Leco, "densesparse");
        // Sparse: well under 1/DENSE_DIVISOR of a row group.
        let mut sparse = Bitmap::new(file.num_rows());
        for p in (0..30_000).step_by(97) {
            sparse.set(p);
        }
        // Dense: everything.
        let dense = Bitmap::all_set(file.num_rows());
        for bm in [&sparse, &dense] {
            let mut stats = QueryStats::default();
            let got = sum_selected(&file, 2, bm, &mut stats).unwrap();
            let expected: u128 = bm.iter_ones().map(|p| val[p] as u128).sum();
            assert_eq!(got, expected);
            let groups = group_by_avg(&file, 1, 2, bm, &mut stats).unwrap();
            let mut sums: HashMap<u64, (u128, u64)> = HashMap::new();
            for p in bm.iter_ones() {
                let e = sums.entry(id[p]).or_insert((0, 0));
                e.0 += val[p] as u128;
                e.1 += 1;
            }
            assert_eq!(groups.len(), sums.len());
            for (g, avg) in &groups {
                let (s, c) = sums[g];
                assert!((avg - s as f64 / c as f64).abs() < 1e-9);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_merge_adds_components() {
        let mut a = QueryStats {
            io_bytes: 10,
            io_seconds: 1.0,
            cpu_seconds: 2.0,
        };
        let b = QueryStats {
            io_bytes: 5,
            io_seconds: 0.5,
            cpu_seconds: 0.25,
        };
        a.merge(&b);
        assert_eq!(a.io_bytes, 15);
        assert!((a.total_seconds() - 3.75).abs() < 1e-12);
    }
}
