//! Pluggable column encodings.
//!
//! `Default` mirrors Parquet's behaviour (dictionary encoding, falling back
//! to plain when the dictionary grows too large); `Delta`, `For` and `Leco`
//! are the lightweight schemes compared in §5.1.  Every encoded column
//! supports random access (`get`), full decode and an exact byte image so the
//! file layer can persist it.

use leco_codecs::{DeltaCodec, ForCodec, IntColumn, OpDict};
use leco_core::{CompressedColumn, LecoCompressor, LecoConfig};

/// Encoding selector for a column chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Parquet's default: dictionary encoding with plain fallback when the
    /// dictionary would exceed ~50% of the chunk.
    Default,
    /// Plain (8 bytes per value).
    Plain,
    /// Delta encoding with fixed frames.
    Delta,
    /// Frame-of-Reference.
    For,
    /// LeCo with linear regressor and fixed-length partitions.
    Leco,
    /// LeCo with linear regressor and *variable-length* partitions: the
    /// split–merge partitioner priced by the exact `CostModel`.  Slower to
    /// encode than [`Encoding::Leco`], smaller on drifting data — the
    /// encoding the ingest compactor uses for cold data.
    LecoVar,
}

impl Encoding {
    /// Label used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            Encoding::Default => "Default",
            Encoding::Plain => "Plain",
            Encoding::Delta => "Delta",
            Encoding::For => "FOR",
            Encoding::Leco => "LeCo",
            Encoding::LecoVar => "LeCoVar",
        }
    }

    /// Stable one-byte tag persisted in the table-file footer.
    pub fn tag(&self) -> u8 {
        match self {
            Encoding::Default => 0,
            Encoding::Plain => 1,
            Encoding::Delta => 2,
            Encoding::For => 3,
            Encoding::Leco => 4,
            Encoding::LecoVar => 5,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u8) -> Option<Encoding> {
        Some(match tag {
            0 => Encoding::Default,
            1 => Encoding::Plain,
            2 => Encoding::Delta,
            3 => Encoding::For,
            4 => Encoding::Leco,
            5 => Encoding::LecoVar,
            _ => return None,
        })
    }
}

/// Frame / partition size used by the fixed-length encodings, matching the
/// 10k-entry partitions of the §5.1 experiments.
pub const CHUNK_PARTITION: usize = 10_000;

/// A column chunk encoded with one of the supported encodings.
#[derive(Debug, Clone)]
pub enum EncodedColumn {
    /// Plain values.
    Plain(Vec<u64>),
    /// Order-preserving dictionary.
    Dict(OpDict),
    /// Fixed-frame delta.
    Delta(DeltaCodec),
    /// Frame-of-Reference.
    For(ForCodec),
    /// LeCo.
    Leco(CompressedColumn),
}

impl EncodedColumn {
    /// Encode `values` with `encoding`.
    pub fn encode(values: &[u64], encoding: Encoding) -> Self {
        match encoding {
            Encoding::Plain => EncodedColumn::Plain(values.to_vec()),
            Encoding::Default => {
                let dict = OpDict::encode(values);
                // Parquet-style fallback: if the dictionary does not pay off,
                // store plain.
                if dict.dict_size_bytes() > values.len() * 4 {
                    EncodedColumn::Plain(values.to_vec())
                } else {
                    EncodedColumn::Dict(dict)
                }
            }
            Encoding::Delta => EncodedColumn::Delta(DeltaCodec::encode(values, CHUNK_PARTITION)),
            Encoding::For => EncodedColumn::For(ForCodec::encode(values, CHUNK_PARTITION)),
            Encoding::Leco => EncodedColumn::Leco(
                LecoCompressor::new(LecoConfig::leco_fix_with_len(CHUNK_PARTITION))
                    .compress(values),
            ),
            Encoding::LecoVar => {
                EncodedColumn::Leco(LecoCompressor::new(LecoConfig::leco_var()).compress(values))
            }
        }
    }

    /// Rebuild an encoded column from the byte image persisted by the file
    /// layer ([`Self::byte_image`]).
    ///
    /// Only the self-describing images can be reopened today: `Plain` (raw
    /// little-endian `u64`s) and the LeCo formats (the `docs/FORMAT.md` v2
    /// layout parsed by [`leco_core::CompressedColumn::from_bytes`]).  The
    /// `Default`/`Delta`/`For` images carry no header, so a table written
    /// with those encodings reports `Unsupported` — write-path consumers
    /// that need reopenability (the ingest compactor) use Plain or LeCo.
    pub fn from_byte_image(bytes: &[u8], encoding: Encoding) -> std::io::Result<Self> {
        match encoding {
            Encoding::Plain => {
                if !bytes.len().is_multiple_of(8) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "plain chunk image of {} bytes is not a u64 array",
                            bytes.len()
                        ),
                    ));
                }
                Ok(EncodedColumn::Plain(
                    bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect(),
                ))
            }
            Encoding::Leco | Encoding::LecoVar => CompressedColumn::from_bytes(bytes)
                .map(EncodedColumn::Leco)
                .map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("corrupt LeCo chunk image: {e:?}"),
                    )
                }),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("{} chunk images cannot be reopened", other.name()),
            )),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::Plain(v) => v.len(),
            EncodedColumn::Dict(c) => c.len(),
            EncodedColumn::Delta(c) => c.len(),
            EncodedColumn::For(c) => c.len(),
            EncodedColumn::Leco(c) => c.len(),
        }
    }

    /// True if the chunk holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded size in bytes (equals the length of [`Self::byte_image`]).
    pub fn size_bytes(&self) -> usize {
        match self {
            EncodedColumn::Plain(v) => v.len() * 8,
            EncodedColumn::Dict(c) => c.size_bytes(),
            EncodedColumn::Delta(c) => c.size_bytes(),
            EncodedColumn::For(c) => c.size_bytes(),
            EncodedColumn::Leco(c) => c.size_bytes(),
        }
    }

    /// Random access to position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            EncodedColumn::Plain(v) => v[i],
            EncodedColumn::Dict(c) => c.get(i),
            EncodedColumn::Delta(c) => c.get(i),
            EncodedColumn::For(c) => c.get(i),
            EncodedColumn::Leco(c) => c.get(i),
        }
    }

    /// Decode every value, appending to `out`.
    ///
    /// This is the word-parallel bulk path used by the scan kernels in
    /// [`crate::exec`] so one buffer can be reused across row groups instead
    /// of allocating a fresh vector per chunk.
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        match self {
            EncodedColumn::Plain(v) => out.extend_from_slice(v),
            EncodedColumn::Dict(c) => c.decode_into(out),
            EncodedColumn::Delta(c) => c.decode_into(out),
            EncodedColumn::For(c) => c.decode_into(out),
            EncodedColumn::Leco(c) => c.decode_into(out),
        }
    }

    /// Decode every value.
    pub fn decode_all(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        self.decode_into(&mut out);
        out
    }

    /// The byte image persisted by the file layer.
    pub fn byte_image(&self) -> Vec<u8> {
        match self {
            EncodedColumn::Plain(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            EncodedColumn::Dict(c) => {
                let mut out = Vec::with_capacity(c.size_bytes());
                c.write_bytes(&mut out);
                out
            }
            EncodedColumn::Delta(c) => {
                let mut out = Vec::with_capacity(c.size_bytes());
                c.write_bytes(&mut out);
                out
            }
            EncodedColumn::For(c) => {
                let mut out = Vec::with_capacity(c.size_bytes());
                c.write_bytes(&mut out);
                out
            }
            EncodedColumn::Leco(c) => c.to_bytes(),
        }
    }

    /// For a sorted chunk, the first position with value `>= target`
    /// (`len` if none).  LeCo uses its model-guided search; the other
    /// encodings binary search through random access.
    pub fn lower_bound_sorted(&self, target: u64) -> usize {
        match self {
            EncodedColumn::Leco(c) => c.lower_bound_sorted(target),
            _ => {
                let mut lo = 0usize;
                let mut hi = self.len();
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if self.get(mid) < target {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        }
    }

    /// True when [`crate::exec::filter_chunk_pushdown`] has a compressed
    /// execution path for this chunk: LeCo (model-inverse plus slack-band
    /// boundary decode), FOR (packed-domain comparison) and Delta (fused
    /// compare).  `Plain` and `Dict` chunks have no model or packed domain
    /// to exploit and fall back to decode-then-filter.
    pub fn supports_pushdown(&self) -> bool {
        matches!(
            self,
            EncodedColumn::Delta(_) | EncodedColumn::For(_) | EncodedColumn::Leco(_)
        )
    }

    /// Encoding label.
    pub fn encoding_name(&self) -> &'static str {
        match self {
            EncodedColumn::Plain(_) => "Plain",
            EncodedColumn::Dict(_) => "Default",
            EncodedColumn::Delta(_) => "Delta",
            EncodedColumn::For(_) => "FOR",
            EncodedColumn::Leco(_) => "LeCo",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u64> {
        (0..30_000u64)
            .map(|i| 1_000_000 + i * 7 + (i % 13))
            .collect()
    }

    #[test]
    fn every_encoding_round_trips() {
        let values = sample();
        for enc in [
            Encoding::Default,
            Encoding::Plain,
            Encoding::Delta,
            Encoding::For,
            Encoding::Leco,
        ] {
            let col = EncodedColumn::encode(&values, enc);
            assert_eq!(col.len(), values.len(), "{enc:?}");
            assert_eq!(col.decode_all(), values, "{enc:?}");
            for i in [0usize, 1, 9_999, 10_000, 29_999] {
                assert_eq!(col.get(i), values[i], "{enc:?} at {i}");
            }
        }
    }

    #[test]
    fn byte_image_length_matches_size() {
        let values = sample();
        for enc in [
            Encoding::Default,
            Encoding::Plain,
            Encoding::Delta,
            Encoding::For,
            Encoding::Leco,
        ] {
            let col = EncodedColumn::encode(&values, enc);
            assert_eq!(col.byte_image().len(), col.size_bytes(), "{enc:?}");
        }
    }

    #[test]
    fn default_encoding_falls_back_to_plain_on_unique_values() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 1_000_003).collect();
        let col = EncodedColumn::encode(&values, Encoding::Default);
        assert!(matches!(col, EncodedColumn::Plain(_)));
        // Low-cardinality data keeps the dictionary.
        let values: Vec<u64> = (0..10_000u64).map(|i| i % 100).collect();
        let col = EncodedColumn::encode(&values, Encoding::Default);
        assert!(matches!(col, EncodedColumn::Dict(_)));
    }

    #[test]
    fn leco_is_smallest_on_correlated_data() {
        let values = sample();
        let leco = EncodedColumn::encode(&values, Encoding::Leco).size_bytes();
        let for_ = EncodedColumn::encode(&values, Encoding::For).size_bytes();
        let dflt = EncodedColumn::encode(&values, Encoding::Default).size_bytes();
        assert!(leco < for_, "LeCo {leco} vs FOR {for_}");
        assert!(leco < dflt, "LeCo {leco} vs Default {dflt}");
    }

    #[test]
    fn lower_bound_consistent_across_encodings() {
        let values = sample();
        for enc in [Encoding::Plain, Encoding::For, Encoding::Leco] {
            let col = EncodedColumn::encode(&values, enc);
            for target in [0u64, 1_000_000, 1_105_000, u64::MAX] {
                let expected = values.partition_point(|&v| v < target);
                assert_eq!(
                    col.lower_bound_sorted(target),
                    expected,
                    "{enc:?} target {target}"
                );
            }
        }
    }
}
