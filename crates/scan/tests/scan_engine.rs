//! Scan-engine acceptance tests: thread-count invariance on synthetic and
//! Zipf tables, clean poisoning on worker panic, and provable zone-map
//! pruning via the `QueryStats` chunk counters.

use leco_columnar::{exec, Encoding, QueryStats, TableFile, TableFileOptions};
use leco_datasets::tables::{sensor_table, SensorDistribution};
use leco_datasets::zipf::Zipf;
use leco_scan::{ScanError, Scanner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("leco-scan-test-{}-{}", std::process::id(), name));
    p
}

fn write_sensor(
    rows: usize,
    dist: SensorDistribution,
    encoding: Encoding,
    name: &str,
) -> (TableFile, PathBuf) {
    let t = sensor_table(rows, dist, 7);
    let path = tmp(name);
    let table = TableFile::write(
        &path,
        &["ts", "id", "val"],
        &[t.ts, t.id, t.val],
        TableFileOptions {
            encoding,
            row_group_size: 10_000,
            ..Default::default()
        },
    )
    .unwrap();
    (table, path)
}

/// A table whose `id` column is Zipf-skewed (hot groups dominate) — the
/// workload shape where work stealing earns its keep.
fn write_zipf(rows: usize, name: &str) -> (TableFile, PathBuf) {
    let mut rng = StdRng::seed_from_u64(99);
    let zipf = Zipf::ycsb_skewed(500);
    let ts: Vec<u64> = (0..rows as u64).map(|i| 1_000 + i * 3).collect();
    let id: Vec<u64> = zipf
        .sample_many(rows, &mut rng)
        .into_iter()
        .map(|r| r as u64 + 1)
        .collect();
    let val: Vec<u64> = id
        .iter()
        .enumerate()
        .map(|(i, &d)| d * 7 + i as u64 % 13)
        .collect();
    let path = tmp(name);
    let table = TableFile::write(
        &path,
        &["ts", "id", "val"],
        &[ts, id, val],
        TableFileOptions {
            encoding: Encoding::Leco,
            row_group_size: 8_000,
            ..Default::default()
        },
    )
    .unwrap();
    (table, path)
}

/// Bit-exact comparison of group-by results: the f64 averages must be the
/// very same bits, not merely close.
fn assert_groups_identical(a: &[(u64, f64)], b: &[(u64, f64)], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: group count");
    for ((ka, va), (kb, vb)) in a.iter().zip(b) {
        assert_eq!(ka, kb, "{ctx}: group key");
        assert_eq!(va.to_bits(), vb.to_bits(), "{ctx}: avg bits for id {ka}");
    }
}

#[test]
fn group_by_results_bit_identical_across_thread_counts() {
    for (dist, name) in [
        (SensorDistribution::Correlated, "threads-corr"),
        (SensorDistribution::Random, "threads-rand"),
    ] {
        let (table, path) = write_sensor(60_000, dist, Encoding::Leco, name);
        let (lo, hi) = (table.zone_map(1, 0).0, table.zone_map(4, 0).1);
        let reference = Scanner::new(&table)
            .filter_col(0, lo, hi)
            .sorted_filter(true)
            .group_by_avg_cols(1, 2)
            .run(1)
            .unwrap();
        // The single-threaded exec driver must agree with the engine.
        let mut stats = QueryStats::default();
        let bitmap = exec::filter_range(&table, 0, lo, hi, true, &mut stats).unwrap();
        let driver_groups = exec::group_by_avg(&table, 1, 2, &bitmap, &mut stats).unwrap();
        assert_groups_identical(&reference.groups, &driver_groups, "driver-vs-engine");
        for threads in THREAD_COUNTS {
            for read_ahead in [true, false] {
                let got = Scanner::new(&table)
                    .filter_col(0, lo, hi)
                    .sorted_filter(true)
                    .group_by_avg_cols(1, 2)
                    .read_ahead(read_ahead)
                    .run(threads)
                    .unwrap();
                let ctx = format!("{name} threads={threads} read_ahead={read_ahead}");
                assert_groups_identical(&reference.groups, &got.groups, &ctx);
                assert_eq!(got.rows_selected, reference.rows_selected, "{ctx}");
                assert_eq!(got.rows_scanned, reference.rows_scanned, "{ctx}");
                assert_eq!(got.morsels, reference.morsels, "{ctx}");
                // Every thread count reads the same chunks and prunes the
                // same row groups; only the timing fields may differ.
                assert_eq!(got.stats.io_bytes, reference.stats.io_bytes, "{ctx}");
                assert_eq!(got.stats.chunks_read, reference.stats.chunks_read, "{ctx}");
                assert_eq!(
                    got.stats.row_groups_pruned, reference.stats.row_groups_pruned,
                    "{ctx}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn zipf_table_sum_and_groups_identical_across_thread_counts() {
    let (table, path) = write_zipf(50_000, "threads-zipf");
    // Unsorted filter on the skewed id column: decode-and-compare path.
    let reference = Scanner::new(&table)
        .filter_col(1, 1, 20)
        .group_by_avg_cols(1, 2)
        .run(1)
        .unwrap();
    let sum_reference = Scanner::new(&table)
        .filter_col(1, 1, 20)
        .sum_col(2)
        .run(1)
        .unwrap();
    assert!(reference.rows_selected > 0);
    for threads in THREAD_COUNTS {
        let got = Scanner::new(&table)
            .filter_col(1, 1, 20)
            .group_by_avg_cols(1, 2)
            .run(threads)
            .unwrap();
        assert_groups_identical(
            &reference.groups,
            &got.groups,
            &format!("zipf threads={threads}"),
        );
        assert_eq!(got.rows_selected, reference.rows_selected);
        let sum = Scanner::new(&table)
            .filter_col(1, 1, 20)
            .sum_col(2)
            .run(threads)
            .unwrap();
        assert_eq!(sum.sum, sum_reference.sum, "zipf sum threads={threads}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pushdown_scans_bit_identical_across_thread_counts() {
    // Compressed execution vs. decode-then-filter, across every encoding
    // with a pushdown kernel and every thread count: same selection, same
    // groups, and the pushdown row accounting covers every scanned row.
    for (k, encoding) in [Encoding::Leco, Encoding::For, Encoding::Delta]
        .iter()
        .enumerate()
    {
        let (table, path) = write_sensor(
            60_000,
            SensorDistribution::Random,
            *encoding,
            &format!("pushdown-{k}"),
        );
        // Unsorted filter on the id column (uniform in 1..=10_000): the
        // pushdown path by default.
        let (lo, hi) = (2_000u64, 6_000u64);
        let baseline = Scanner::new(&table)
            .filter_col(1, lo, hi)
            .pushdown_filter(false)
            .group_by_avg_cols(1, 2)
            .run(1)
            .unwrap();
        assert!(baseline.rows_selected > 0, "{encoding:?}");
        for threads in THREAD_COUNTS {
            let got = Scanner::new(&table)
                .filter_col(1, lo, hi)
                .group_by_avg_cols(1, 2)
                .run(threads)
                .unwrap();
            let ctx = format!("{encoding:?} threads={threads}");
            assert_groups_identical(&baseline.groups, &got.groups, &ctx);
            assert_eq!(got.rows_selected, baseline.rows_selected, "{ctx}");
            assert_eq!(got.rows_scanned, baseline.rows_scanned, "{ctx}");
            // Exhaustive row accounting: every scanned row lands in exactly
            // one bucket, at every thread count.
            let accounted = got.stats.rows_skipped_by_model
                + got.stats.boundary_rows_decoded
                + got.stats.rows_decoded_full;
            assert_eq!(accounted, got.rows_scanned, "{ctx}");
            // The baseline decodes everything, and the counters say so.
            assert_eq!(
                baseline.stats.rows_decoded_full, baseline.rows_scanned,
                "{ctx}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn pushdown_decodes_less_than_full_scan_on_selective_predicate() {
    // The zipf table's ts column is exactly linear and stored as LeCo: the
    // model inverse should resolve nearly every row of a selective unsorted
    // filter without decoding it.
    let (table, path) = write_zipf(50_000, "pushdown-sel");
    let (zlo, _) = table.zone_map(0, 0);
    let (lo, hi) = (zlo, zlo + 150); // ~50 of 50_000 rows
    let pushdown = Scanner::new(&table)
        .filter_col(0, lo, hi)
        .count()
        .run(4)
        .unwrap();
    let baseline = Scanner::new(&table)
        .filter_col(0, lo, hi)
        .pushdown_filter(false)
        .count()
        .run(4)
        .unwrap();
    assert_eq!(pushdown.rows_selected, baseline.rows_selected);
    let pushdown_decoded = pushdown.stats.boundary_rows_decoded + pushdown.stats.rows_decoded_full;
    assert!(
        pushdown_decoded < baseline.stats.rows_decoded_full / 10,
        "pushdown decoded {pushdown_decoded} vs baseline {}",
        baseline.stats.rows_decoded_full
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn worker_panic_poisons_scan_with_clean_error() {
    let (table, path) = write_sensor(
        40_000,
        SensorDistribution::Correlated,
        Encoding::Leco,
        "poison",
    );
    for threads in [1, 4] {
        let err = Scanner::new(&table)
            .group_by_avg_cols(1, 2)
            .inject_panic_at_morsel(2)
            .run(threads)
            .unwrap_err();
        match err {
            ScanError::WorkerPanicked { message, .. } => {
                assert!(message.contains("injected scan fault"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
    // The table stays usable after a poisoned scan.
    let ok = Scanner::new(&table).count().run(4).unwrap();
    assert_eq!(ok.rows_selected, 40_000);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_surfaces_as_io_error() {
    let (table, path) = write_sensor(
        40_000,
        SensorDistribution::Correlated,
        Encoding::Leco,
        "truncated",
    );
    // Chop the data file in half behind the table's back: chunk reads past
    // the truncation point must fail, and the scan must report Io — not a
    // worker panic and not a hang.
    let full = std::fs::metadata(&path).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(full / 2).unwrap();
    drop(file);
    for read_ahead in [false, true] {
        let err = Scanner::new(&table)
            .group_by_avg_cols(1, 2)
            .read_ahead(read_ahead)
            .run(4)
            .unwrap_err();
        assert!(
            matches!(err, ScanError::Io(_)),
            "read_ahead={read_ahead}: expected Io, got {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_column_name_is_a_clean_error() {
    let (table, path) = write_zipf(10_000, "badcol");
    let err = Scanner::new(&table)
        .try_filter("no_such_column", 0, 10)
        .unwrap_err();
    assert!(matches!(err, ScanError::ColumnNotFound(ref n) if n == "no_such_column"));
    assert!(Scanner::new(&table).try_group_by_avg("id", "nope").is_err());
    assert!(Scanner::new(&table).try_sum("nope").is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn zone_map_pruning_skips_row_groups_before_enqueue() {
    let (table, path) = write_sensor(
        80_000,
        SensorDistribution::Correlated,
        Encoding::Leco,
        "prune",
    );
    assert_eq!(table.num_row_groups(), 8);
    // Predicate confined to the third row group's ts range.
    let (lo, hi) = table.zone_map(2, 0);
    let result = Scanner::new(&table)
        .filter_col(0, lo + 1, hi - 1)
        .group_by_avg_cols(1, 2)
        .run(4)
        .unwrap();
    // Only one morsel survived the scheduler; the other seven row groups
    // were pruned without any I/O, provable from the chunk counters.
    assert_eq!(result.morsels, 1);
    assert_eq!(result.stats.row_groups_pruned, 7);
    assert_eq!(result.stats.chunks_read, 3); // ts + id + val of one group
    assert_eq!(result.rows_scanned, 10_000);
    let full = Scanner::new(&table)
        .filter_col(0, 0, u64::MAX)
        .group_by_avg_cols(1, 2)
        .run(4)
        .unwrap();
    assert_eq!(full.stats.row_groups_pruned, 0);
    assert_eq!(full.stats.chunks_read, 24);
    assert!(result.stats.io_bytes < full.stats.io_bytes);
    std::fs::remove_file(&path).ok();
}

#[test]
fn block_compressed_tables_scan_identically() {
    let t = sensor_table(30_000, SensorDistribution::Correlated, 3);
    let (p1, p2) = (tmp("plain-bc"), tmp("lzb-bc"));
    let plain = TableFile::write(
        &p1,
        &["ts", "id", "val"],
        &[t.ts.clone(), t.id.clone(), t.val.clone()],
        TableFileOptions {
            encoding: Encoding::Leco,
            row_group_size: 10_000,
            block_compression: leco_columnar::BlockCompression::None,
        },
    )
    .unwrap();
    let lzb = TableFile::write(
        &p2,
        &["ts", "id", "val"],
        &[t.ts, t.id, t.val],
        TableFileOptions {
            encoding: Encoding::Leco,
            row_group_size: 10_000,
            block_compression: leco_columnar::BlockCompression::Lzb,
        },
    )
    .unwrap();
    for threads in [1, 4] {
        let a = Scanner::new(&plain)
            .group_by_avg_cols(1, 2)
            .run(threads)
            .unwrap();
        let b = Scanner::new(&lzb)
            .group_by_avg_cols(1, 2)
            .run(threads)
            .unwrap();
        assert_groups_identical(&a.groups, &b.groups, "block-compression");
    }
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn unfiltered_count_scans_every_row() {
    let (table, path) = write_zipf(20_000, "count");
    for threads in THREAD_COUNTS {
        let r = Scanner::new(&table).run(threads).unwrap();
        assert_eq!(r.rows_selected, 20_000);
        assert_eq!(r.rows_scanned, 20_000);
        assert_eq!(r.groups, vec![]);
        assert_eq!(r.sum, 0);
    }
    std::fs::remove_file(&path).ok();
}
