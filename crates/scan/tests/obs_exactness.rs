//! Concurrency exactness of the obs instrumentation: the sharded counters
//! and histograms must produce *identical* totals no matter how many
//! workers the scan runs on — sharding may never lose or double-count an
//! increment.
//!
//! Everything lives in ONE `#[test]` so this file's process owns the global
//! registry: integration-test binaries each run in their own process, and a
//! single test function keeps concurrent tests from interleaving deltas.

use leco_columnar::{Encoding, TableFile, TableFileOptions};
use leco_datasets::tables::{sensor_table, SensorDistribution};
use leco_scan::Scanner;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn counters_and_histograms_are_exact_at_every_thread_count() {
    if !leco_obs::active() {
        return; // compiled with the noop feature: nothing is recorded
    }
    leco_obs::set_enabled(true);
    let registry = leco_obs::Registry::global();

    let t = sensor_table(120_000, SensorDistribution::Correlated, 7);
    let mut path = std::env::temp_dir();
    path.push(format!("leco-obs-exact-{}.tbl", std::process::id()));
    let table = TableFile::write(
        &path,
        &["ts", "id", "val"],
        &[t.ts.clone(), t.id, t.val],
        TableFileOptions {
            encoding: Encoding::Leco,
            row_group_size: 10_000,
            ..Default::default()
        },
    )
    .unwrap();
    let (ts_min, ts_max) = (t.ts[0], *t.ts.last().unwrap());
    let lo = ts_min + (ts_max - ts_min) * 3 / 10;
    let hi = ts_min + (ts_max - ts_min) * 7 / 10;

    // ── Strict equality across thread counts, read-ahead off: without the
    // prefetcher every morsel's I/O happens exactly once in the worker that
    // claims it, so every delta below is a pure function of the data.
    let mut reference: Option<[u64; 5]> = None;
    for threads in THREAD_COUNTS {
        let before = registry.snapshot();
        let r = Scanner::new(&table)
            .filter_col(0, lo, hi)
            .sorted_filter(true)
            .group_by_avg_cols(1, 2)
            .read_ahead(false)
            .run(threads)
            .unwrap();
        let after = registry.snapshot();
        let deltas = [
            after.counter_delta(&before, "scan.morsels"),
            after.counter_delta(&before, "scan.morsel_rows"),
            after.counter_delta(&before, "scan.rows_selected"),
            after.counter_delta(&before, "scan.prefetch.misses"),
            after.hist_count_delta(&before, "columnar.chunk_io_ns"),
        ];
        // The registry agrees with the engine's own accounting...
        assert_eq!(deltas[0], r.morsels as u64, "{threads} threads");
        assert_eq!(deltas[1], r.rows_scanned, "{threads} threads");
        assert_eq!(deltas[2], r.rows_selected, "{threads} threads");
        // ...every morsel misses the (disabled) prefetcher exactly once...
        assert_eq!(deltas[3], deltas[0], "{threads} threads");
        // ...and reads its 3 column chunks itself.
        assert_eq!(deltas[4], 3 * deltas[0], "{threads} threads");
        // ...and the totals are identical at every thread count.
        match &reference {
            None => reference = Some(deltas),
            Some(expected) => assert_eq!(
                *expected, deltas,
                "sharded counters diverged at {threads} threads"
            ),
        }
        assert_eq!(
            after.gauge("scan.pool.queue_depth"),
            0,
            "queue-depth gauge must return to zero ({threads} threads)"
        );
    }

    // ── Weaker invariants that hold even with the read-ahead race: claim()
    // runs exactly once per morsel, so hits + misses == morsels regardless
    // of which side performed the I/O.
    for threads in THREAD_COUNTS {
        let before = registry.snapshot();
        let r = Scanner::new(&table)
            .filter_col(0, lo, hi)
            .sorted_filter(true)
            .group_by_avg_cols(1, 2)
            .run(threads)
            .unwrap();
        let after = registry.snapshot();
        let claims = after.counter_delta(&before, "scan.prefetch.hits")
            + after.counter_delta(&before, "scan.prefetch.misses");
        assert_eq!(claims, r.morsels as u64, "{threads} threads, read-ahead");
        assert_eq!(
            after.counter_delta(&before, "scan.morsel_rows"),
            r.rows_scanned,
            "{threads} threads, read-ahead"
        );
    }

    std::fs::remove_file(&path).ok();
}
