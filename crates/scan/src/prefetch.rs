//! The read-ahead stage: overlap chunk I/O with worker compute.
//!
//! A dedicated prefetch thread walks the morsel schedule *in order*, reading
//! each upcoming morsel's column-chunk bytes from the shared
//! [`ChunkReader`](leco_columnar::ChunkReader) and block-decompressing them,
//! while the workers decode and aggregate the morsels already fetched.  The
//! artifacts of a prefetch — the I/O + decompression charge recorded in a
//! [`QueryStats`] — are parked in a bounded buffer keyed by morsel index.
//!
//! Workers never *wait* on the prefetcher: a worker first tries to claim its
//! morsel's prefetched entry, and on a miss (the prefetcher hasn't reached
//! it, or a steal reordered consumption) simply performs the read itself and
//! marks the morsel claimed so the prefetcher skips it.  That single rule
//! makes the stage deadlock-free by construction: workers only ever take,
//! and the only blocking wait (the prefetcher's, when the buffer is full)
//! times out and re-checks the stop flag.

use leco_columnar::QueryStats;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Condvar;
use std::time::Duration;

/// How many morsels the prefetcher may run ahead of the slowest consumed
/// one.  Small multiples of the worker count keep the buffered chunk bytes
/// bounded while still hiding one row group of I/O latency per worker.
pub(crate) fn read_ahead_budget(n_threads: usize) -> usize {
    (2 * n_threads).clamp(2, 64)
}

#[derive(Default)]
struct PrefetchState {
    /// Morsel → the I/O/CPU charge of its completed prefetch.
    ready: HashMap<usize, QueryStats>,
    /// Morsels a worker already handled itself; the prefetcher skips these,
    /// and a late prefetch result for one is dropped.
    claimed: HashSet<usize>,
}

/// Shared hand-off buffer between the prefetch thread and the workers.
pub(crate) struct PrefetchBuffer {
    state: Mutex<PrefetchState>,
    /// Signalled when buffer space frees up or the scan stops.
    space: Condvar,
    stop: AtomicBool,
    budget: usize,
}

// The std Condvar pairs with the vendored parking_lot mutex because the
// shim's guard *is* a std guard; see `vendor/parking_lot`.
impl PrefetchBuffer {
    pub(crate) fn new(n_threads: usize) -> Self {
        Self {
            state: Mutex::new(PrefetchState::default()),
            space: Condvar::new(),
            stop: AtomicBool::new(false),
            budget: read_ahead_budget(n_threads),
        }
    }

    /// Worker side: claim morsel `m`.  Returns the prefetched stats charge if
    /// the read-ahead got there first, `None` if the worker must do its own
    /// I/O.  Either way the morsel is marked claimed.
    pub(crate) fn claim(&self, m: usize) -> Option<QueryStats> {
        let mut state = self.state.lock();
        state.claimed.insert(m);
        let hit = state.ready.remove(&m);
        drop(state);
        if hit.is_some() {
            leco_obs::counter!("scan.prefetch.hits").inc();
            // Space freed: the prefetcher may move on.
            self.space.notify_all();
        } else {
            leco_obs::counter!("scan.prefetch.misses").inc();
        }
        hit
    }

    /// Prefetcher side: true if morsel `m` still needs fetching.
    pub(crate) fn should_fetch(&self, m: usize) -> bool {
        !self.stopped() && !self.state.lock().claimed.contains(&m)
    }

    /// Prefetcher side: deposit the finished charge for morsel `m` (dropped
    /// if a worker claimed it while the fetch was in flight), then block
    /// until there is buffer space for the *next* fetch.
    pub(crate) fn deposit(&self, m: usize, stats: QueryStats) {
        let mut state = self.state.lock();
        if !state.claimed.contains(&m) {
            state.ready.insert(m, stats);
        }
        if state.ready.len() >= self.budget && !self.stopped() {
            // The prefetcher ran a full buffer ahead and must idle until a
            // worker consumes something: the workers, not the I/O, are the
            // bottleneck right now.
            leco_obs::counter!("scan.prefetch.stalls").inc();
        }
        while state.ready.len() >= self.budget && !self.stopped() {
            let (next, _timeout) = self
                .space
                .wait_timeout(state, Duration::from_millis(20))
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }

    /// Ask the prefetcher to wind down (scan finished or poisoned).
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.space.notify_all();
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Residual I/O charge of prefetched-but-unclaimed morsels, folded into
    /// the query total at the end so prefetch I/O is never unaccounted for.
    pub(crate) fn drain_residual(&self) -> QueryStats {
        let mut state = self.state.lock();
        let mut total = QueryStats::default();
        for (_, stats) in state.ready.drain() {
            total.merge(&stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_before_deposit_drops_late_result() {
        let buf = PrefetchBuffer::new(2);
        assert!(buf.claim(5).is_none());
        assert!(!buf.should_fetch(5));
        let stats = QueryStats {
            io_bytes: 100,
            ..Default::default()
        };
        buf.deposit(5, stats); // late: must be dropped
        assert_eq!(buf.drain_residual(), QueryStats::default());
    }

    #[test]
    fn deposit_then_claim_hands_over_stats() {
        let buf = PrefetchBuffer::new(2);
        let stats = QueryStats {
            io_bytes: 7,
            chunks_read: 1,
            ..Default::default()
        };
        buf.deposit(3, stats);
        let got = buf.claim(3).expect("prefetched");
        assert_eq!(got.io_bytes, 7);
        assert!(buf.claim(3).is_none(), "claim is one-shot");
    }

    #[test]
    fn full_buffer_blocks_until_claim_or_stop() {
        let buf = PrefetchBuffer::new(1); // budget = 2
        buf.deposit(0, QueryStats::default());
        // Second deposit fills the buffer; it must return once stop() is
        // called even though nobody claims.
        std::thread::scope(|scope| {
            let t = scope.spawn(|| buf.deposit(1, QueryStats::default()));
            std::thread::sleep(Duration::from_millis(5));
            buf.stop();
            t.join().unwrap();
        });
        assert!(buf.stopped());
        let residual = buf.drain_residual();
        assert_eq!(residual, QueryStats::default());
    }
}
