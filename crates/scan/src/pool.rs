//! A hand-rolled work-stealing worker pool over `std::thread`.
//!
//! Tasks are integer indices dealt round-robin into one bounded deque per
//! worker.  A worker pops from the *front* of its own deque and, when that
//! runs dry, steals from the *back* of a victim's — the classic
//! work-stealing discipline: owners and thieves touch opposite ends, so a
//! steal rarely contends with the victim's own pops, and stolen tasks are the
//! ones whose data the victim would have touched last.
//!
//! Panics do not hang the pool: a panicking worker *poisons* the queues, the
//! remaining workers drain out at their next pop, and the driver returns a
//! [`PoolError`] carrying the panic message instead of propagating the
//! unwind.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// Why a pool run failed.
#[derive(Debug)]
pub enum PoolError {
    /// A worker panicked; the scan was poisoned and unfinished tasks were
    /// abandoned.
    WorkerPanicked {
        /// Index of the worker that panicked.
        worker: usize,
        /// Panic payload rendered as a string.
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { worker, message } => {
                write!(f, "scan worker {worker} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Per-worker task deques plus the shared poison state.
pub struct WorkQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    poisoned: AtomicBool,
    panic_info: Mutex<Option<(usize, String)>>,
}

impl WorkQueues {
    /// Deal tasks `0..n_tasks` round-robin across `n_workers` deques.
    pub fn new(n_workers: usize, n_tasks: usize) -> Self {
        let n_workers = n_workers.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..n_workers)
            .map(|_| VecDeque::with_capacity(n_tasks / n_workers + 1))
            .collect();
        for t in 0..n_tasks {
            queues[t % n_workers].push_back(t);
        }
        leco_obs::gauge!("scan.pool.queue_depth").add(n_tasks as i64);
        leco_obs::counter!("scan.pool.tasks").add(n_tasks as u64);
        Self {
            queues: queues.into_iter().map(Mutex::new).collect(),
            poisoned: AtomicBool::new(false),
            panic_info: Mutex::new(None),
        }
    }

    /// Number of worker deques.
    pub fn n_workers(&self) -> usize {
        self.queues.len()
    }

    /// Next task for `worker`: front of its own deque, else the back of the
    /// first non-empty victim (scanning from its right neighbour).  Returns
    /// `None` when all deques are empty or the pool is poisoned.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        if self.poisoned.load(Ordering::Acquire) {
            return None;
        }
        if let Some(t) = self.queues[worker].lock().pop_front() {
            leco_obs::gauge!("scan.pool.queue_depth").sub(1);
            return Some(t);
        }
        for k in 1..self.queues.len() {
            let victim = (worker + k) % self.queues.len();
            if let Some(t) = self.queues[victim].lock().pop_back() {
                leco_obs::gauge!("scan.pool.queue_depth").sub(1);
                leco_obs::counter!("scan.pool.steals").inc();
                return Some(t);
            }
        }
        None
    }

    /// True once a worker has panicked.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    fn poison(&self, worker: usize, message: String) {
        let mut info = self.panic_info.lock();
        if info.is_none() {
            *info = Some((worker, message));
        }
        self.poisoned.store(true, Ordering::Release);
    }

    fn take_error(&self) -> Option<PoolError> {
        self.panic_info
            .lock()
            .take()
            .map(|(worker, message)| PoolError::WorkerPanicked { worker, message })
    }
}

impl Drop for WorkQueues {
    /// A poisoned pool abandons queued tasks; release their contribution to
    /// the depth gauge so it returns to zero between scans.
    fn drop(&mut self) {
        let abandoned: usize = self.queues.iter().map(|q| q.lock().len()).sum();
        if abandoned > 0 {
            leco_obs::gauge!("scan.pool.queue_depth").sub(abandoned as i64);
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `n_tasks` tasks on `n_threads` work-stealing workers, each holding a
/// private state built by `init` — the morsel-driven execution shape: state
/// is per-worker (scratch buffers, partial aggregates), tasks are stolen
/// freely, and the per-worker states come back for a final merge.
///
/// `task(state, t)` is invoked exactly once per task index `t` unless a
/// worker panics, in which case the pool drains, the remaining states are
/// dropped and `Err(PoolError::WorkerPanicked)` is returned.
pub fn run_with_worker_state<S, I, F>(
    n_threads: usize,
    n_tasks: usize,
    init: I,
    task: F,
) -> Result<Vec<S>, PoolError>
where
    S: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let queues = WorkQueues::new(n_threads, n_tasks);
    let states: Vec<Option<S>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..queues.n_workers())
            .map(|w| {
                let queues = &queues;
                let init = &init;
                let task = &task;
                scope.spawn(move || {
                    let body = catch_unwind(AssertUnwindSafe(|| {
                        let mut state = init(w);
                        while let Some(t) = queues.pop(w) {
                            task(&mut state, t);
                        }
                        state
                    }));
                    match body {
                        Ok(state) => Some(state),
                        Err(payload) => {
                            queues.poison(w, panic_message(payload));
                            None
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker bodies never unwind"))
            .collect()
    });
    if let Some(err) = queues.take_error() {
        return Err(err);
    }
    Ok(states.into_iter().flatten().collect())
}

/// Apply `f` to every item on the pool and return the results in input
/// order.  The order-preserving convenience wrapper used by batched point
/// lookups (`leco_kvstore`'s multi-get).
pub fn parallel_map<T, R, F>(n_threads: usize, items: &[T], f: F) -> Result<Vec<R>, PoolError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let parts = run_with_worker_state(
        n_threads,
        items.len(),
        |_| Vec::new(),
        |acc: &mut Vec<(usize, R)>, t| acc.push((t, f(&items[t]))),
    )?;
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "task {i} ran twice");
        out[i] = Some(r);
    }
    Ok(out
        .into_iter()
        .map(|o| o.expect("every task runs exactly once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_task_runs_exactly_once() {
        for threads in [1, 2, 4, 8] {
            let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            let states = run_with_worker_state(
                threads,
                hits.len(),
                |_| 0usize,
                |count, t| {
                    hits[t].fetch_add(1, Ordering::Relaxed);
                    *count += 1;
                },
            )
            .unwrap();
            assert_eq!(states.len(), threads);
            assert_eq!(states.iter().sum::<usize>(), hits.len());
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1_000).collect();
        let out = parallel_map(4, &items, |&x| x * 3 + 1).unwrap();
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn panic_poisons_instead_of_hanging() {
        let executed = AtomicUsize::new(0);
        let err = run_with_worker_state(
            4,
            1_000,
            |_| (),
            |_, t| {
                if t == 17 {
                    panic!("injected failure at task {t}");
                }
                executed.fetch_add(1, Ordering::Relaxed);
            },
        )
        .unwrap_err();
        let PoolError::WorkerPanicked { message, .. } = err;
        assert!(message.contains("injected failure"), "{message}");
        // The pool drained early: not every task ran.
        assert!(executed.load(Ordering::Relaxed) < 1_000);
    }

    #[test]
    fn zero_tasks_and_more_threads_than_tasks() {
        let states = run_with_worker_state(8, 0, |_| 7usize, |_, _| unreachable!()).unwrap();
        assert_eq!(states, vec![7; 8]);
        let out = parallel_map(16, &[1, 2], |&x| x).unwrap();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn stealing_balances_a_lopsided_deal() {
        // One slow task pinned to worker 0's deque; the other workers must
        // steal the rest or the run would take ~serial time.  We only assert
        // correctness here (counts), not timing, to stay robust on 1-core CI.
        let done = AtomicUsize::new(0);
        run_with_worker_state(
            4,
            64,
            |_| (),
            |_, t| {
                if t == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                done.fetch_add(1, Ordering::Relaxed);
            },
        )
        .unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }
}
