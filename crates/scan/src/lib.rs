//! `leco-scan` — a morsel-driven parallel scan engine over LeCo row-group
//! table files.
//!
//! The paper's systems claim (§5.1) is that learned columns make scan-heavy
//! analytics faster *end-to-end*; this crate supplies the execution engine
//! that turns the single-threaded kernels of `leco_columnar` into a
//! hardware-saturating scan:
//!
//! * **Morsels.** The unit of scheduling is one row group.  The scheduler
//!   applies zone-map pruning *before* enqueueing, so a morsel that cannot
//!   contain a match is never seen by a worker.
//! * **Work stealing.** Morsels are dealt round-robin into per-worker
//!   deques ([`pool`]); a worker drains its own deque from the front and
//!   steals from a victim's back when idle, keeping all cores busy under
//!   skew (e.g. when zone maps cluster the surviving morsels).
//! * **Shared immutable file state.** All workers read through one
//!   [`ChunkReader`](leco_columnar::ChunkReader) — one descriptor,
//!   positioned `pread`-style reads, no cursor mutex.  All mutable state
//!   lives in a per-worker [`ScanScratch`](leco_columnar::ScanScratch).
//! * **Read-ahead.** A prefetch stage fetches and
//!   block-decompresses the next row group's chunk bytes while workers
//!   decode the current one, overlapping the I/O and CPU halves of the
//!   paper's §5.1 time breakdown.
//! * **Exact merges.** Partial aggregates are integers (`u128` sums,
//!   `u64` counts); the final division/sort happens once after the merge, so
//!   query results are bit-identical for every thread count.
//! * **Clean failure.** A panicking worker poisons the queues; the scan
//!   returns [`ScanError::WorkerPanicked`] instead of hanging or unwinding
//!   through the pool.
//!
//! ```
//! use leco_columnar::{TableFile, TableFileOptions};
//! use leco_scan::Scanner;
//!
//! let ts: Vec<u64> = (0..40_000u64).map(|i| 1_000 + i).collect();
//! let id: Vec<u64> = (0..40_000u64).map(|i| i % 10).collect();
//! let val: Vec<u64> = (0..40_000u64).map(|i| i * 3).collect();
//! let mut path = std::env::temp_dir();
//! path.push(format!("leco-scan-doc-{}.tbl", std::process::id()));
//! let table = TableFile::write(
//!     &path,
//!     &["ts", "id", "val"],
//!     &[ts, id, val],
//!     TableFileOptions { row_group_size: 10_000, ..Default::default() },
//! ).unwrap();
//!
//! let result = Scanner::new(&table)
//!     .filter("ts", 5_000, 25_000)
//!     .sorted_filter(true)
//!     .group_by_avg("id", "val")
//!     .run(4)
//!     .unwrap();
//! assert_eq!(result.rows_selected, 20_001);
//! assert_eq!(result.groups.len(), 10);
//! // Zone maps pruned the row groups that cannot match.
//! assert!(result.stats.row_groups_pruned >= 1);
//! std::fs::remove_file(&path).ok();
//! ```

pub mod pool;
mod prefetch;
mod scanner;

pub use pool::{parallel_map, run_with_worker_state, PoolError};
pub use scanner::{ScanError, ScanResult, Scanner};
