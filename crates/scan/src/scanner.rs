//! The morsel-driven scan driver: plan → prune → prefetch → execute → merge.

use crate::pool::{self, PoolError};
use crate::prefetch::PrefetchBuffer;
use leco_columnar::exec::{
    filter_chunk, filter_chunk_pushdown, finalize_group_avgs, group_by_avg_chunk,
    sum_selected_chunk,
};
use leco_columnar::{ChunkReader, QueryStats, ScanScratch, TableFile};
use leco_obs::Stopwatch;

/// Errors surfaced by [`Scanner::run`].
#[derive(Debug)]
pub enum ScanError {
    /// Reading chunk bytes from the table file failed.
    Io(std::io::Error),
    /// A worker panicked; the scan was poisoned and aborted cleanly.
    WorkerPanicked {
        /// Index of the worker that panicked.
        worker: usize,
        /// Panic payload rendered as a string.
        message: String,
    },
    /// A column name passed to the builder does not exist in the table.
    ColumnNotFound(String),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Io(e) => write!(f, "scan I/O error: {e}"),
            ScanError::WorkerPanicked { worker, message } => {
                write!(f, "scan poisoned: worker {worker} panicked: {message}")
            }
            ScanError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
        }
    }
}

impl std::error::Error for ScanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScanError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ScanError {
    fn from(e: std::io::Error) -> Self {
        ScanError::Io(e)
    }
}

impl From<PoolError> for ScanError {
    fn from(e: PoolError) -> Self {
        let PoolError::WorkerPanicked { worker, message } = e;
        ScanError::WorkerPanicked { worker, message }
    }
}

#[derive(Debug, Clone, Copy)]
struct FilterSpec {
    col: usize,
    lo: u64,
    hi: u64,
    sorted: bool,
    /// Compressed execution: evaluate the predicate inside the encoded
    /// domain (model inverse for LeCo, packed-domain compare for FOR, fused
    /// compare for Delta) instead of decode-then-filter.  On by default;
    /// [`Scanner::pushdown_filter`] turns it off for comparison runs.
    pushdown: bool,
}

#[derive(Debug, Clone, Copy)]
enum Aggregate {
    /// Count the selected rows (filter-only pipelines).
    Count,
    /// `SUM(col)` over the selected rows.
    Sum { col: usize },
    /// `AVG(val) GROUP BY id` over the selected rows.
    GroupByAvg { id_col: usize, val_col: usize },
}

/// Result of a parallel scan.
///
/// All result fields are integer-derived and merged with exact arithmetic, so
/// they are **bit-identical for every thread count**; only [`Self::stats`]
/// (wall-clock charges) varies between runs.
#[derive(Debug)]
pub struct ScanResult {
    /// `(id, avg)` pairs sorted by id — empty unless group-by was requested.
    pub groups: Vec<(u64, f64)>,
    /// The integer `(id, sum, count)` partials behind [`Self::groups`],
    /// sorted by id.  Distributed callers (the `leco-server` shard merge)
    /// fold these across partitions with exact arithmetic and divide once,
    /// which keeps a sharded group-by bit-identical to a single scan.
    pub group_partials: Vec<(u64, u128, u64)>,
    /// Sum aggregate — 0 unless a sum was requested.
    pub sum: u128,
    /// Rows passing the filter (all scanned rows when there is no filter).
    pub rows_selected: u64,
    /// Rows in the row groups that were actually scanned (after pruning).
    pub rows_scanned: u64,
    /// Morsels executed (row groups surviving zone-map pruning).
    pub morsels: usize,
    /// Merged per-query accounting, including the scheduler's pruning
    /// counters and the read-ahead stage's I/O.
    pub stats: QueryStats,
}

/// A composable filter → project → aggregate scan over a
/// [`TableFile`], executed morsel-at-a-time by a work-stealing pool.
///
/// ```no_run
/// use leco_columnar::{TableFile, TableFileOptions};
/// use leco_scan::Scanner;
///
/// # fn demo(table: &TableFile) -> Result<(), leco_scan::ScanError> {
/// let result = Scanner::new(table)
///     .filter("ts", 1_000, 2_000)
///     .sorted_filter(true)
///     .group_by_avg("id", "val")
///     .run(8)?;
/// println!("{} groups, {:?}", result.groups.len(), result.stats);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Scanner<'a> {
    table: &'a TableFile,
    filter: Option<FilterSpec>,
    agg: Aggregate,
    read_ahead: bool,
    /// Test hook: panic while executing this global morsel index.
    inject_panic_at: Option<usize>,
}

impl<'a> Scanner<'a> {
    /// Start building a scan over `table`.  Without any other calls the scan
    /// counts all rows.
    pub fn new(table: &'a TableFile) -> Self {
        Self {
            table,
            filter: None,
            agg: Aggregate::Count,
            read_ahead: true,
            inject_panic_at: None,
        }
    }

    fn resolve(&self, name: &str) -> Result<usize, ScanError> {
        self.table
            .column_index(name)
            .ok_or_else(|| ScanError::ColumnNotFound(name.to_string()))
    }

    /// Push down the range predicate `lo <= col <= hi` (column by name).
    ///
    /// # Panics
    /// Panics if the column does not exist; use [`Self::try_filter`] to
    /// handle that case gracefully.
    pub fn filter(self, col: &str, lo: u64, hi: u64) -> Self {
        self.try_filter(col, lo, hi)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::filter`]: returns
    /// [`ScanError::ColumnNotFound`] instead of panicking on a bad name.
    pub fn try_filter(self, col: &str, lo: u64, hi: u64) -> Result<Self, ScanError> {
        let idx = self.resolve(col)?;
        Ok(self.filter_col(idx, lo, hi))
    }

    /// Push down the range predicate `lo <= col <= hi` (column by index).
    pub fn filter_col(mut self, col: usize, lo: u64, hi: u64) -> Self {
        self.filter = Some(FilterSpec {
            col,
            lo,
            hi,
            sorted: false,
            pushdown: true,
        });
        self
    }

    /// Declare the filter column sorted, enabling the model-guided
    /// binary-search filter (§5.1.1's computation pruning) instead of a
    /// decode-and-compare pass.
    pub fn sorted_filter(mut self, sorted: bool) -> Self {
        if let Some(f) = &mut self.filter {
            f.sorted = sorted;
        }
        self
    }

    /// Enable or disable compressed execution of the filter (on by default).
    ///
    /// With pushdown on, unsorted filters over LeCo / FOR / Delta chunks are
    /// evaluated inside the encoded domain
    /// ([`leco_columnar::exec::filter_chunk_pushdown`]) and only
    /// correction-slack boundary rows are decoded; with it off the scan
    /// bulk-decodes every chunk and compares row by row — the baseline the
    /// selectivity benchmark measures against.  A sorted filter ignores this
    /// toggle: the binary-search path already decodes nothing.
    pub fn pushdown_filter(mut self, enabled: bool) -> Self {
        if let Some(f) = &mut self.filter {
            f.pushdown = enabled;
        }
        self
    }

    /// Aggregate `AVG(val) GROUP BY id` over the selected rows (by name).
    ///
    /// # Panics
    /// Panics if either column does not exist; use
    /// [`Self::try_group_by_avg`] to handle that case gracefully.
    pub fn group_by_avg(self, id_col: &str, val_col: &str) -> Self {
        self.try_group_by_avg(id_col, val_col)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::group_by_avg`]: returns
    /// [`ScanError::ColumnNotFound`] instead of panicking on a bad name.
    pub fn try_group_by_avg(self, id_col: &str, val_col: &str) -> Result<Self, ScanError> {
        let id = self.resolve(id_col)?;
        let val = self.resolve(val_col)?;
        Ok(self.group_by_avg_cols(id, val))
    }

    /// Aggregate `AVG(val) GROUP BY id` over the selected rows (by index).
    pub fn group_by_avg_cols(mut self, id_col: usize, val_col: usize) -> Self {
        self.agg = Aggregate::GroupByAvg { id_col, val_col };
        self
    }

    /// Aggregate `SUM(col)` over the selected rows (by name).
    ///
    /// # Panics
    /// Panics if the column does not exist; use [`Self::try_sum`] to handle
    /// that case gracefully.
    pub fn sum(self, col: &str) -> Self {
        self.try_sum(col).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::sum`]: returns
    /// [`ScanError::ColumnNotFound`] instead of panicking on a bad name.
    pub fn try_sum(self, col: &str) -> Result<Self, ScanError> {
        let idx = self.resolve(col)?;
        Ok(self.sum_col(idx))
    }

    /// Aggregate `SUM(col)` over the selected rows (by index).
    pub fn sum_col(mut self, col: usize) -> Self {
        self.agg = Aggregate::Sum { col };
        self
    }

    /// Only count the selected rows (the default).
    pub fn count(mut self) -> Self {
        self.agg = Aggregate::Count;
        self
    }

    /// Enable or disable the read-ahead stage (on by default).  With it on, a
    /// prefetch thread fetches and block-decompresses the next row group's
    /// chunk bytes while the workers decode the current one.
    pub fn read_ahead(mut self, enabled: bool) -> Self {
        self.read_ahead = enabled;
        self
    }

    /// Test hook: make whichever worker executes morsel `k` panic, to
    /// exercise pool poisoning end-to-end.  Hidden from docs; not part of the
    /// stable API.
    #[doc(hidden)]
    pub fn inject_panic_at_morsel(mut self, k: usize) -> Self {
        self.inject_panic_at = Some(k);
        self
    }

    /// Columns the scan must read per morsel, deduplicated.
    fn needed_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        if let Some(f) = &self.filter {
            cols.push(f.col);
        }
        match self.agg {
            Aggregate::Count => {}
            Aggregate::Sum { col } => cols.push(col),
            Aggregate::GroupByAvg { id_col, val_col } => {
                cols.push(id_col);
                cols.push(val_col);
            }
        }
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Execute the scan on `n_threads` workers (clamped to at least 1).
    pub fn run(&self, n_threads: usize) -> Result<ScanResult, ScanError> {
        let n_threads = n_threads.max(1);
        let table = self.table;
        let mut sched_stats = QueryStats::default();

        // ── Schedule: zone-map pruning happens here, before a morsel is
        // ever enqueued, so pruned row groups cost the workers nothing.
        let mut morsels: Vec<usize> = Vec::with_capacity(table.num_row_groups());
        for rg in 0..table.num_row_groups() {
            if let Some(f) = &self.filter {
                let (zmin, zmax) = table.zone_map(rg, f.col);
                if zmax < f.lo || zmin > f.hi {
                    sched_stats.row_groups_pruned += 1;
                    continue;
                }
            }
            morsels.push(rg);
        }
        let columns = self.needed_columns();
        let reader = table.chunk_reader()?;
        let prefetch = PrefetchBuffer::new(n_threads);
        let use_read_ahead = self.read_ahead && morsels.len() > 1;
        // First worker-side I/O error; its presence makes the other workers
        // bail at their next morsel, and the scan reports it as
        // `ScanError::Io` after the pool drains.
        let worker_io_error: parking_lot::Mutex<Option<std::io::Error>> =
            parking_lot::Mutex::new(None);

        let worker_states = std::thread::scope(|scope| {
            // ── Read-ahead stage: walk the schedule in order, fetching and
            // block-decompressing chunk bytes ahead of the workers.
            let prefetch_handle = if use_read_ahead {
                let reader = &reader;
                let prefetch = &prefetch;
                let morsels = &morsels;
                let columns = &columns;
                Some(scope.spawn(move || -> std::io::Result<()> {
                    let mut buf = Vec::new();
                    for (m, &rg) in morsels.iter().enumerate() {
                        if prefetch.stopped() {
                            break;
                        }
                        if !prefetch.should_fetch(m) {
                            continue;
                        }
                        let mut stats = QueryStats::default();
                        for &col in columns.iter() {
                            reader.read_chunk_bytes(rg, col, &mut buf, &mut stats)?;
                            reader.decompress_chunk(rg, col, &buf, &mut stats);
                        }
                        prefetch.deposit(m, stats);
                    }
                    Ok(())
                }))
            } else {
                None
            };

            // ── Execute: work-stealing workers fold morsels into their
            // private ScanScratch.
            let result = pool::run_with_worker_state(
                n_threads,
                morsels.len(),
                |_| ScanScratch::new(),
                |scratch: &mut ScanScratch, m| {
                    if self.inject_panic_at == Some(m) {
                        panic!("injected scan fault at morsel {m}");
                    }
                    if worker_io_error.lock().is_some() {
                        return; // scan already failing: drain cheaply
                    }
                    let rg = morsels[m];
                    if let Err(e) =
                        self.execute_morsel(&reader, &prefetch, rg, m, &columns, scratch)
                    {
                        let mut slot = worker_io_error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                },
            );
            prefetch.stop();
            let prefetch_result =
                prefetch_handle.map(|h| h.join().expect("prefetcher does not panic"));
            (result, prefetch_result)
        });
        let (pool_result, prefetch_result) = worker_states;
        let states = pool_result?;
        if let Some(e) = worker_io_error.lock().take() {
            return Err(ScanError::Io(e));
        }
        if let Some(Err(e)) = prefetch_result {
            return Err(ScanError::Io(e));
        }

        // ── Merge: integer partials fold exactly; the final division and
        // sort happen once, so results are independent of the split.
        let mut merged = ScanScratch::new();
        for state in states {
            merged.merge(state);
        }
        merged.stats.merge(&sched_stats);
        merged.stats.merge(&prefetch.drain_residual());
        let rows_scanned: u64 = morsels
            .iter()
            .map(|&rg| {
                let (s, e) = table.row_group_range(rg);
                (e - s) as u64
            })
            .sum();
        let mut group_partials: Vec<(u64, u128, u64)> = merged
            .groups
            .iter()
            .map(|(&id, &(sum, count))| (id, sum, count))
            .collect();
        group_partials.sort_unstable_by_key(|&(id, _, _)| id);
        Ok(ScanResult {
            groups: finalize_group_avgs(&merged.groups),
            group_partials,
            sum: merged.sum,
            rows_selected: merged.selected,
            rows_scanned,
            morsels: morsels.len(),
            stats: merged.stats,
        })
    }

    /// One morsel: claim (or perform) the I/O, then run the per-chunk
    /// kernels against the worker's scratch.  A failed chunk read (truncated
    /// or corrupt file) propagates up and surfaces as [`ScanError::Io`].
    fn execute_morsel(
        &self,
        reader: &ChunkReader<'_>,
        prefetch: &PrefetchBuffer,
        rg: usize,
        m: usize,
        columns: &[usize],
        scratch: &mut ScanScratch,
    ) -> std::io::Result<()> {
        let _morsel_span = leco_obs::span("scan.morsel");
        leco_obs::counter!("scan.morsels").inc();

        // I/O: prefetched charge, or read the chunk bytes ourselves.
        {
            let _decode_span = leco_obs::span("scan.morsel.decode");
            match prefetch.claim(m) {
                Some(prefetched) => scratch.stats.merge(&prefetched),
                None => {
                    let mut buf = std::mem::take(&mut scratch.io_buf);
                    for &col in columns {
                        let read = reader.read_chunk_bytes(rg, col, &mut buf, &mut scratch.stats);
                        if let Err(e) = read {
                            scratch.io_buf = buf;
                            return Err(e);
                        }
                        reader.decompress_chunk(rg, col, &buf, &mut scratch.stats);
                    }
                    scratch.io_buf = buf;
                }
            }
        }

        let (row_start, row_end) = self.table.row_group_range(rg);
        let rows = row_end - row_start;
        leco_obs::counter!("scan.morsel_rows").add(rows as u64);
        let cpu = Stopwatch::start();

        // Selection: morsel-local bitmap, reset in place (no allocation).
        let filter_span = leco_obs::span("scan.morsel.filter");
        scratch.sel.reset(rows);
        match &self.filter {
            Some(f) => {
                let chunk = self.table.chunk_encoded(rg, f.col);
                // Kernel selection: a sorted column is resolved by binary
                // search; otherwise compressed execution handles the
                // encodings with an exploitable domain and everything else
                // (or pushdown off) takes the decode-then-filter path.
                if f.sorted {
                    filter_chunk(
                        chunk,
                        f.lo,
                        f.hi,
                        true,
                        0,
                        &mut scratch.sel,
                        &mut scratch.decode,
                        &mut scratch.stats,
                    );
                } else if f.pushdown && chunk.supports_pushdown() {
                    filter_chunk_pushdown(
                        chunk,
                        f.lo,
                        f.hi,
                        0,
                        &mut scratch.sel,
                        &mut scratch.decode,
                        &mut scratch.stats,
                    );
                } else {
                    filter_chunk(
                        chunk,
                        f.lo,
                        f.hi,
                        false,
                        0,
                        &mut scratch.sel,
                        &mut scratch.decode,
                        &mut scratch.stats,
                    );
                }
            }
            None => scratch.sel.set_range(0, rows),
        }
        drop(filter_span);
        let morsel_selected = scratch.sel.count_ones() as u64;
        scratch.selected += morsel_selected;
        leco_obs::counter!("scan.rows_selected").add(morsel_selected);

        // Aggregate over the selection.
        let _agg_span = leco_obs::span("scan.morsel.aggregate");
        match self.agg {
            Aggregate::Count => {}
            Aggregate::Sum { col } => {
                let chunk = self.table.chunk_encoded(rg, col);
                scratch.sum += sum_selected_chunk(chunk, &scratch.sel, 0, &mut scratch.decode);
            }
            Aggregate::GroupByAvg { id_col, val_col } => {
                let ids = self.table.chunk_encoded(rg, id_col);
                let vals = self.table.chunk_encoded(rg, val_col);
                group_by_avg_chunk(
                    ids,
                    vals,
                    &scratch.sel,
                    0,
                    &mut scratch.decode,
                    &mut scratch.decode2,
                    &mut scratch.groups,
                );
            }
        }
        scratch.stats.charge_cpu(cpu.elapsed_secs());
        Ok(())
    }
}
